"""The local backend: real worker processes, real bytes, wall-clock time.

:class:`LocalRuntime` hosts K *logical* workers on P OS processes
(``multiprocessing``), each process owning its workers' state — for
ColumnSGD, the column partitions themselves.  Exchanges move payloads
produced by the codec in :mod:`repro.storage.serialization`, so the
bytes accounted per :class:`~repro.net.message.Message` are exactly
``len(encode_payload(...))`` — which equals the simulator's byte model
by construction.  Time is *measured*: every exchange is bracketed by a
monotonic counter and the round loop advances a :class:`WallClock`
accumulator with the measured seconds.

Fault tolerance (the real-process port of ``docs/faults.md``):

* every wait is **deadline-bounded** through the sanctioned helpers in
  :mod:`repro.runtime.deadline` (lint rule R018); the deadline follows
  the simulator's TimeoutSync alpha x median rule over *measured*
  exchange durations;
* command frames carry **sequence numbers** and workers replay their
  cached reply on a duplicate, so deadline-expiry resends are
  at-most-once — a retried ``update`` op cannot double-apply a gradient;
* resends are accounted as :data:`~repro.net.message.MessageKind.RETRY`
  traffic exactly like the sim's lossy-link ARQ, and each expired
  deadline records a :class:`~repro.engine.trace.RetryEvent`;
* a silent worker becomes a :class:`WorkerTimeout` and a SIGKILLed /
  crashed process a :class:`WorkerDied` in ``Exchange.failures`` —
  structured outcomes the executors feed into the recovery pipeline —
  or a :class:`~repro.errors.WorkerUnresponsiveError` for callers that
  asked ``run_all`` to raise;
* :meth:`respawn` relaunches dead processes so the executors can
  restore their logical workers from checkpoints.

Division of labour with the trainer-side executors
(``repro.core.localexec`` / ``repro.baselines.localexec``):

* the runtime owns processes, pipes, measurement, fault injection
  mechanics, and traffic accounting — and is the only module in the
  tree allowed to touch ``time`` (it lives outside the protocol-path
  lint scope, and rule R008 sanctions calls into it);
* the executors own the algorithm *and the recovery policy*: what ops
  to issue, how to reduce, when to checkpoint, how to restore a
  respawned worker.

The size-based :class:`Runtime` transport methods are implemented as
**accounting primitives**: they record the per-kind/per-node
:class:`~repro.net.message.Message` counters and return ``0.0``,
because on this backend durations come from measurement (the
:meth:`run_all` exchange result), not from byte formulas.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.trace import RetryEvent
from repro.errors import (
    ConfigurationError,
    SimulationError,
    WorkerUnresponsiveError,
)
from repro.net.message import Message, MessageKind
from repro.net.network import NetworkModel
from repro.net.topology import ring_allreduce_shards
from repro.runtime.base import Runtime, WallClock
from repro.runtime.chaos import LocalFaultEvent, LocalFaultKind
from repro.runtime.deadline import (
    TimeoutPolicy,
    join_within,
    recv_command,
    recv_ready,
    wait_ready,
)
from repro.storage.serialization import OBJECT_OVERHEAD_BYTES
from repro.utils.validation import check_non_negative, check_positive

T = TypeVar("T")

_STOP = "__stop__"
_PING = "__ping__"
#: reserved args key carrying an injected straggler delay (seconds)
_DELAY = "__delay__"


@dataclass(frozen=True)
class WorkerReply:
    """One logical worker's answer to an op."""

    worker: int
    result: dict
    payload: Optional[bytes]
    #: seconds the worker's process spent inside the op handler
    seconds: float


@dataclass(frozen=True)
class WorkerDied:
    """The process hosting ``worker`` was gone mid-exchange (EOF/SIGKILL)."""

    worker: int
    op: str

    def __str__(self) -> str:
        return "worker {} process died during op {!r}".format(self.worker, self.op)


@dataclass(frozen=True)
class WorkerTimeout:
    """``worker`` stayed silent past every retry deadline."""

    worker: int
    op: str
    deadline_s: float
    attempts: int

    def __str__(self) -> str:
        return "worker {} silent on op {!r} after {} attempt(s) ({:.3f}s deadline)".format(
            self.worker, self.op, self.attempts, self.deadline_s
        )


@dataclass(frozen=True)
class Exchange:
    """One full master <-> workers exchange.

    ``seconds`` is the wall-clock duration of the whole exchange
    (issue every command, workers handle them, collect every reply) as
    measured at the master; per-worker handler times are on the
    replies.  ``failures`` maps workers that produced no reply to their
    structured outcome (:class:`WorkerDied` / :class:`WorkerTimeout`);
    ``retries`` counts deadline-expiry and garble resends, each already
    accounted as RETRY traffic.
    """

    replies: Dict[int, WorkerReply]
    seconds: float
    failures: Dict[int, object] = field(default_factory=dict)
    retries: int = 0

    def ok(self) -> bool:
        """True when every targeted worker replied."""
        return not self.failures

    def dead_workers(self) -> List[int]:
        """Workers whose host process died during the exchange."""
        return sorted(
            w for w, f in self.failures.items() if isinstance(f, WorkerDied)
        )

    def silent_workers(self) -> List[int]:
        """Workers that timed out (alive but past every deadline)."""
        return sorted(
            w for w, f in self.failures.items() if isinstance(f, WorkerTimeout)
        )

    def payloads(self) -> Dict[int, bytes]:
        """Per-worker reply payloads (workers that sent one)."""
        return {
            w: r.payload for w, r in self.replies.items() if r.payload is not None
        }

    def max_worker_seconds(self) -> float:
        """Slowest worker's handler time (0.0 with no replies)."""
        return max((r.seconds for r in self.replies.values()), default=0.0)

    def comm_seconds(self) -> float:
        """Exchange time not explained by the slowest handler.

        The master issues commands and drains replies while workers
        run, so ``total - max(handler)`` is the (non-negative) transport
        + scheduling share of the exchange.
        """
        return max(0.0, self.seconds - self.max_worker_seconds())


def _process_main(conn, programs: Dict[int, object]) -> None:
    """Worker-process loop: handle ops for the hosted logical workers.

    Frames are ``(seq, op, worker_id, args, payload)``; each worker's
    last reply is cached by sequence number, and a duplicate frame
    (a master resend after a lost or late reply) replays the cache
    instead of re-executing — the at-most-once half of the ARQ, so a
    retried ``update`` cannot double-apply its gradient.
    """
    last: Dict[int, Tuple[int, tuple]] = {}
    try:
        while True:
            ok, frame = recv_command(conn)
            if not ok:
                break  # master gone (EOF): exit rather than linger
            seq, op, worker_id, args, payload = frame
            if op == _STOP:
                break
            args = dict(args) if args else {}
            cached = last.get(worker_id)
            if cached is not None and cached[0] == seq:
                conn.send(cached[1])
                continue
            delay = float(args.pop(_DELAY, 0.0))
            if delay > 0.0:
                time.sleep(delay)  # injected straggler (LocalFaultKind.STALL)
            if op == _PING:
                reply = (seq, worker_id, {"pong": True}, None, 0.0)
            else:
                start = time.perf_counter()
                try:
                    result, reply_payload = programs[worker_id].handle(
                        op, args, payload
                    )
                except Exception as exc:  # surfaced at the master, see run_all
                    reply = (
                        seq,
                        worker_id,
                        {"__error__": "{}: {}".format(type(exc).__name__, exc)},
                        None,
                        time.perf_counter() - start,
                    )
                else:
                    reply = (
                        seq,
                        worker_id,
                        result,
                        reply_payload,
                        time.perf_counter() - start,
                    )
            last[worker_id] = (seq, reply)
            conn.send(reply)
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class LocalRuntime(Runtime):
    """Execution substrate backed by real OS processes.

    ``processes=0`` (the default) gives every logical worker its own
    process; smaller values pack contiguous worker ranges into shared
    processes (useful on small machines — the numerics are identical
    either way because each logical worker keeps its own program
    state).  ``timeout`` bounds every exchange (see
    :class:`~repro.runtime.deadline.TimeoutPolicy`); no call into this
    class blocks indefinitely.
    """

    name = "local"

    def __init__(
        self,
        n_workers: int,
        processes: int = 0,
        start_method: str = "fork",
        bandwidth: float = 1e9 / 8,
        latency: float = 0.0,
        timeout: Optional[TimeoutPolicy] = None,
    ):
        check_positive(n_workers, "n_workers")
        check_non_negative(processes, "processes")
        if start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigurationError(
                "unknown start_method {!r}; expected fork, spawn or "
                "forkserver".format(start_method)
            )
        self._n_workers = int(n_workers)
        self.n_processes = min(int(processes) or self._n_workers, self._n_workers)
        self.start_method = start_method
        self.timeout = timeout if timeout is not None else TimeoutPolicy()
        self._clock = WallClock()
        # Counter set only — transfer_time() is never consulted here.
        self._network = NetworkModel(bandwidth=bandwidth, latency=latency)
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List[object] = []
        self._workers_of_proc: List[List[int]] = []
        self._dead_procs: set = set()
        #: pending one-shot reply mangling per worker: 'drop' | 'garble'
        self._mangle: Dict[int, str] = {}
        self._seq = 0
        #: trace attached by the local executors (mirrors
        #: ``SimulatedCluster.engine_trace``)
        self.engine_trace = None
        self._started = False

    # ------------------------------------------------------------------
    # Runtime surface
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def clock(self) -> WallClock:
        return self._clock

    @property
    def network(self) -> NetworkModel:
        return self._network

    def gather(self, kind: MessageKind, sizes: Sequence[int]) -> float:
        """Account a workers -> master exchange (sizes in worker order)."""
        for worker_id, size in enumerate(sizes):
            self._network.send(Message(kind, worker_id, Message.MASTER, int(size)))
        return 0.0

    def broadcast(self, kind: MessageKind, size: int) -> float:
        """Account a master -> every-worker exchange."""
        for worker_id in range(self._n_workers):
            self._network.send(Message(kind, Message.MASTER, worker_id, int(size)))
        return 0.0

    def sharded_gather(
        self, kind: MessageKind, sizes: Sequence[int], n_servers: int
    ) -> float:
        check_positive(n_servers, "n_servers")
        return self.gather(kind, sizes)

    def sharded_broadcast(
        self, kind: MessageKind, size: int, n_servers: int
    ) -> float:
        check_positive(n_servers, "n_servers")
        return self.broadcast(kind, size)

    def allreduce(self, kind: MessageKind, size: int) -> float:
        """Ring allreduce accounting over the exact shard split.

        Uses the same :func:`~repro.net.topology.ring_allreduce_shards`
        split as the simulator's ``allreduce_time`` (last shard takes
        the remainder), and asserts the accounted total matches the
        closed-form byte model so the two backends can never drift.
        """
        n = self._n_workers
        size = int(size)
        if n == 1:
            return 0.0
        total = 0
        for step, step_bytes in enumerate(ring_allreduce_shards(size, n)):
            self._network.send(Message(kind, step % n, (step + 1) % n, step_bytes))
            total += step_bytes
        expected = 2 * (n - 1) * (size // n) + size % n
        if total != expected:
            raise SimulationError(
                "allreduce accounted {} bytes for size={} n={}; byte model "
                "expects {}".format(total, size, n, expected)
            )
        return 0.0

    def barrier(self) -> None:
        """Round-trip a ping through every worker process.

        Bounded by the timeout policy: a dead or hung process raises
        :class:`~repro.errors.WorkerUnresponsiveError` instead of
        blocking forever.
        """
        if self._started:
            self.run_all(_PING)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def start(self, programs: Dict[int, object]) -> "LocalRuntime":
        """Launch the worker processes hosting ``programs``.

        ``programs`` maps every logical worker id ``0..K-1`` to an
        object with ``handle(op, args, payload) -> (result, payload)``.
        With the default ``fork`` start method the programs are
        inherited copy-on-write; with ``spawn`` they must pickle.
        """
        if self._started:
            raise SimulationError("LocalRuntime already started")
        missing = set(range(self._n_workers)) - set(programs)
        if missing:
            raise ConfigurationError(
                "no program for worker(s) {}".format(sorted(missing))
            )
        context = multiprocessing.get_context(self.start_method)
        bounds = [
            self._n_workers * i // self.n_processes
            for i in range(self.n_processes + 1)
        ]
        for i in range(self.n_processes):
            hosted = list(range(bounds[i], bounds[i + 1]))
            proc, conn = self._launch(context, hosted, programs)
            self._procs.append(proc)
            self._conns.append(conn)
            self._workers_of_proc.append(hosted)
        self._started = True
        return self

    def _launch(self, context, hosted: List[int], programs: Dict[int, object]):
        parent_conn, child_conn = context.Pipe(duplex=True)
        proc = context.Process(
            target=_process_main,
            args=(child_conn, {w: programs[w] for w in hosted}),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def close(self) -> None:
        """Stop and join every worker process (idempotent, bounded)."""
        if not self._started:
            return
        self._refresh_liveness()
        for i, conn in enumerate(self._conns):
            if i in self._dead_procs:
                continue
            try:
                conn.send((0, _STOP, -1, None, None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if not join_within(proc, 10.0):
                proc.terminate()
                if not join_within(proc, 5.0):
                    proc.kill()
                    join_within(proc, 5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs, self._conns, self._workers_of_proc = [], [], []
        self._dead_procs, self._mangle = set(), {}
        self._started = False

    # ------------------------------------------------------------------
    # fault injection and recovery surface
    # ------------------------------------------------------------------
    def _refresh_liveness(self) -> None:
        for i, proc in enumerate(self._procs):
            if i not in self._dead_procs and not proc.is_alive():
                self._dead_procs.add(i)

    def _proc_of(self, worker: int) -> int:
        for i, hosted in enumerate(self._workers_of_proc):
            if worker in hosted:
                return i
        raise ConfigurationError("no process hosts worker {}".format(worker))

    def dead_workers(self) -> List[int]:
        """Logical workers whose host process is currently dead."""
        if not self._started:
            return []
        self._refresh_liveness()
        return sorted(
            w for i in self._dead_procs for w in self._workers_of_proc[i]
        )

    def kill_worker(self, worker: int) -> None:
        """SIGKILL the process hosting ``worker`` (a real crash).

        Every logical worker sharing that process dies with it, exactly
        like a machine loss taking down its hosted partitions.
        """
        if not self._started:
            raise SimulationError("LocalRuntime not started; call start()")
        i = self._proc_of(worker)
        proc = self._procs[i]
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            join_within(proc, 5.0)
        self._dead_procs.add(i)

    def inject_faults(
        self, events: Iterable[LocalFaultEvent]
    ) -> Dict[int, dict]:
        """Apply a chaos plan's events for the coming round.

        KILL strikes immediately (SIGKILL); DROP/GARBLE arm a one-shot
        mangle of the victim's next reply frame; STALL returns per-worker
        ``__delay__`` args the caller merges into its next exchange so
        the victim's handler sleeps before working.
        """
        extra: Dict[int, dict] = {}
        for event in events:
            if event.kind is LocalFaultKind.KILL:
                self.kill_worker(event.worker)
            elif event.kind is LocalFaultKind.STALL:
                extra.setdefault(event.worker, {})[_DELAY] = float(event.stall_s)
            elif event.kind is LocalFaultKind.DROP:
                self._mangle[event.worker] = "drop"
            elif event.kind is LocalFaultKind.GARBLE:
                self._mangle[event.worker] = "garble"
            else:  # pragma: no cover - enum is closed
                raise ConfigurationError(
                    "unknown fault kind {!r}".format(event.kind)
                )
        return extra

    def respawn(self, programs: Dict[int, object]) -> float:
        """Relaunch every dead process; returns measured seconds.

        ``programs`` must cover the logical workers hosted by the dead
        processes — freshly rebuilt program objects whose state the
        executor then restores (checkpoint decode, zero-init, ...) via
        targeted ops.  Live processes are untouched.
        """
        if not self._started:
            raise SimulationError("LocalRuntime not started; call start()")
        start = time.perf_counter()
        self._refresh_liveness()
        context = multiprocessing.get_context(self.start_method)
        for i in sorted(self._dead_procs):
            hosted = self._workers_of_proc[i]
            missing = [w for w in hosted if w not in programs]
            if missing:
                raise ConfigurationError(
                    "respawn needs a program for worker(s) {}".format(missing)
                )
            try:
                self._conns[i].close()
            except OSError:
                pass
            proc, conn = self._launch(context, hosted, programs)
            self._procs[i] = proc
            self._conns[i] = conn
            for w in hosted:
                self._mangle.pop(w, None)
        self._dead_procs = set()
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # real transport
    # ------------------------------------------------------------------
    def run_all(
        self,
        op: str,
        args: Optional[dict] = None,
        payload: Optional[bytes] = None,
        per_worker_args: Optional[Dict[int, dict]] = None,
        workers: Optional[Sequence[int]] = None,
        iteration: Optional[int] = None,
        raise_on_fault: bool = True,
    ) -> Exchange:
        """Issue ``op`` to the targeted workers and collect the replies.

        ``payload`` (one blob for everyone — a broadcast) and ``args``
        are shared; ``per_worker_args`` entries are merged over ``args``
        for the targeted worker; ``workers`` restricts the exchange to a
        subset (default: all).  The exchange is measured wall-clock at
        the master and every wait is deadline-bounded: when the
        timeout policy's deadline expires the frame is resent with
        exponential backoff (accounted as RETRY traffic and recorded as
        a :class:`~repro.engine.trace.RetryEvent` under ``iteration``),
        and a worker still silent after ``max_retries`` resends — or
        whose process died — lands in ``Exchange.failures``.

        With ``raise_on_fault=True`` (the default) such failures raise
        :class:`~repro.errors.WorkerUnresponsiveError`; executors that
        run the recovery pipeline pass ``False`` and consume the
        structured outcomes.  Worker-side exceptions always raise
        :class:`~repro.errors.SimulationError` — after every in-flight
        reply has been drained, so the shared pipes stay synchronized.
        """
        if not self._started:
            raise SimulationError("LocalRuntime not started; call start()")
        start = time.perf_counter()
        self._refresh_liveness()
        targets = (
            list(range(self._n_workers)) if workers is None else sorted(workers)
        )
        unknown = [w for w in targets if not 0 <= w < self._n_workers]
        if unknown:
            raise ConfigurationError("unknown worker(s) {}".format(unknown))
        resend_bytes = OBJECT_OVERHEAD_BYTES + len(payload or b"")

        frames: Dict[int, tuple] = {}
        pending: Dict[int, int] = {}  # worker -> awaited seq
        conn_index = {id(conn): i for i, conn in enumerate(self._conns)}
        failures: Dict[int, object] = {}
        errors: Dict[int, str] = {}
        replies: Dict[int, WorkerReply] = {}
        retries = 0
        retry_log: List[Tuple[int, Tuple[int, ...], float]] = []

        def mark_proc_dead(i: int) -> None:
            self._dead_procs.add(i)
            for w in self._workers_of_proc[i]:
                if w in pending:
                    del pending[w]
                    failures[w] = WorkerDied(worker=w, op=op)

        # issue phase -----------------------------------------------------
        for i, (conn, hosted) in enumerate(
            zip(self._conns, self._workers_of_proc)
        ):
            for w in hosted:
                if w not in targets:
                    continue
                merged = dict(args) if args else {}
                if per_worker_args and w in per_worker_args:
                    merged.update(per_worker_args[w])
                self._seq += 1
                frames[w] = (self._seq, op, w, merged, payload)
                if i in self._dead_procs:
                    failures[w] = WorkerDied(worker=w, op=op)
                    continue
                try:
                    conn.send(frames[w])
                    pending[w] = self._seq
                except (BrokenPipeError, OSError):
                    failures[w] = WorkerDied(worker=w, op=op)
                    mark_proc_dead(i)

        # collect phase: deadline-bounded ARQ -----------------------------
        attempt = 0
        deadline = self.timeout.deadline_s(attempt)
        while pending:
            deadline_end = time.perf_counter() + deadline
            while pending:
                remaining = deadline_end - time.perf_counter()
                if remaining <= 0:
                    break
                watched = {
                    id(self._conns[self._proc_of(w)]): self._conns[self._proc_of(w)]
                    for w in pending
                }
                for conn in wait_ready(list(watched.values()), remaining):
                    i = conn_index[id(conn)]
                    ok, frame = recv_ready(conn)
                    if not ok:
                        mark_proc_dead(i)
                        continue
                    seq, w, result, reply_payload, seconds = frame
                    if pending.get(w) != seq:
                        continue  # stale reply from a prior exchange/resend
                    mangle = self._mangle.pop(w, None)
                    if mangle == "drop":
                        # reply lost in transit: the ARQ timer will resend
                        continue
                    if mangle == "garble":
                        # checksum failure at receipt: account the wasted
                        # arrival and resend immediately
                        self._network.send(
                            Message(
                                MessageKind.RETRY,
                                w,
                                Message.MASTER,
                                OBJECT_OVERHEAD_BYTES + len(reply_payload or b""),
                            )
                        )
                        try:
                            conn.send(frames[w])
                            self._network.send(
                                Message(
                                    MessageKind.RETRY,
                                    Message.MASTER,
                                    w,
                                    resend_bytes,
                                )
                            )
                            retries += 1
                        except (BrokenPipeError, OSError):
                            mark_proc_dead(i)
                        continue
                    del pending[w]
                    if "__error__" in result:
                        errors[w] = result["__error__"]
                        continue
                    replies[w] = WorkerReply(
                        worker=w,
                        result=result,
                        payload=reply_payload,
                        seconds=float(seconds),
                    )
            if not pending:
                break
            # deadline expired with stragglers
            retry_log.append((attempt, tuple(sorted(pending)), deadline))
            if attempt >= self.timeout.max_retries:
                self._refresh_liveness()
                for w in sorted(pending):
                    if self._proc_of(w) in self._dead_procs:
                        failures[w] = WorkerDied(worker=w, op=op)
                    else:
                        failures[w] = WorkerTimeout(
                            worker=w,
                            op=op,
                            deadline_s=deadline,
                            attempts=attempt + 1,
                        )
                pending.clear()
                break
            attempt += 1
            deadline = self.timeout.deadline_s(attempt)
            for w in list(pending):
                i = self._proc_of(w)
                try:
                    self._conns[i].send(frames[w])
                    self._network.send(
                        Message(MessageKind.RETRY, Message.MASTER, w, resend_bytes)
                    )
                    retries += 1
                except (BrokenPipeError, OSError):
                    mark_proc_dead(i)

        # trace + bookkeeping ---------------------------------------------
        if self.engine_trace is not None and iteration is not None:
            for log_attempt, suspects, log_deadline in retry_log:
                resolved = (
                    "arrived"
                    if all(w in replies or w in errors for w in suspects)
                    else "failed"
                )
                self.engine_trace.add_retry(
                    RetryEvent(
                        round=iteration,
                        attempt=log_attempt,
                        suspects=suspects,
                        deadline_s=log_deadline,
                        resolved=resolved,
                    )
                )
        elapsed = time.perf_counter() - start
        if not failures and not retry_log:
            self.timeout.observe(elapsed)
        if errors:
            # satellite fix: every in-flight reply was drained above, so
            # raising here cannot desynchronize the shared pipes.
            raise SimulationError(
                "; ".join(
                    "op {!r} failed on worker {}: {}".format(op, w, errors[w])
                    for w in sorted(errors)
                )
            )
        exchange = Exchange(
            replies=replies,
            seconds=elapsed,
            failures=failures,
            retries=retries,
        )
        if failures and raise_on_fault:
            raise WorkerUnresponsiveError(
                op,
                dead=exchange.dead_workers(),
                silent=exchange.silent_workers(),
            )
        return exchange

    def measure(self, fn: Callable[[], T]) -> Tuple[T, float]:
        """Run ``fn`` and return ``(result, wall seconds)``.

        The master-side counterpart of worker handler timing: executors
        wrap their reduce/update steps in this instead of importing
        ``time`` themselves (wall-clock access stays confined to this
        module).
        """
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start


def max_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    Measurement lives here because wall-clock and resource probes are
    confined to this module (lint rule R001); the store benchmark uses
    it to demonstrate that out-of-core loading keeps the peak footprint
    below the in-memory shuffle's.  ``ru_maxrss`` is kilobytes on Linux
    and bytes on macOS.
    """
    import resource
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss if sys.platform == "darwin" else rss * 1024)
