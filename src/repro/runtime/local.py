"""The local backend: real worker processes, real bytes, wall-clock time.

:class:`LocalRuntime` hosts K *logical* workers on P OS processes
(``multiprocessing``), each process owning its workers' state — for
ColumnSGD, the column partitions themselves.  Exchanges move payloads
produced by the codec in :mod:`repro.storage.serialization`, so the
bytes accounted per :class:`~repro.net.message.Message` are exactly
``len(encode_payload(...))`` — which equals the simulator's byte model
by construction.  Time is *measured*: every exchange is bracketed by a
monotonic counter and the round loop advances a :class:`WallClock`
accumulator with the measured seconds.

Division of labour with the trainer-side executors
(``repro.core.localexec`` / ``repro.baselines.localexec``):

* the runtime owns processes, pipes, measurement, and traffic
  accounting — and is the only module in the tree allowed to touch
  ``time`` (it lives outside the protocol-path lint scope, and rule
  R008 sanctions calls into it);
* the executors own the algorithm: what ops to issue, how to reduce,
  what traffic the round should have produced.

The size-based :class:`Runtime` transport methods are implemented as
**accounting primitives**: they record the per-kind/per-node
:class:`~repro.net.message.Message` counters and return ``0.0``,
because on this backend durations come from measurement (the
:meth:`run_all` exchange result), not from byte formulas.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message, MessageKind
from repro.net.network import NetworkModel
from repro.runtime.base import Runtime, WallClock
from repro.utils.validation import check_non_negative, check_positive

T = TypeVar("T")

_STOP = "__stop__"
_PING = "__ping__"


@dataclass(frozen=True)
class WorkerReply:
    """One logical worker's answer to an op."""

    worker: int
    result: dict
    payload: Optional[bytes]
    #: seconds the worker's process spent inside the op handler
    seconds: float


@dataclass(frozen=True)
class Exchange:
    """One full master <-> workers exchange.

    ``seconds`` is the wall-clock duration of the whole exchange
    (issue every command, workers handle them, collect every reply) as
    measured at the master; per-worker handler times are on the
    replies.
    """

    replies: Dict[int, WorkerReply]
    seconds: float

    def payloads(self) -> Dict[int, bytes]:
        """Per-worker reply payloads (workers that sent one)."""
        return {
            w: r.payload for w, r in self.replies.items() if r.payload is not None
        }

    def max_worker_seconds(self) -> float:
        """Slowest worker's handler time (0.0 with no replies)."""
        return max((r.seconds for r in self.replies.values()), default=0.0)

    def comm_seconds(self) -> float:
        """Exchange time not explained by the slowest handler.

        The master issues commands and drains replies while workers
        run, so ``total - max(handler)`` is the (non-negative) transport
        + scheduling share of the exchange.
        """
        return max(0.0, self.seconds - self.max_worker_seconds())


def _process_main(conn, programs: Dict[int, object]) -> None:
    """Worker-process loop: handle ops for the hosted logical workers."""
    try:
        while True:
            frame = conn.recv()
            op = frame[0]
            if op == _STOP:
                break
            _, worker_id, args, payload = frame
            if op == _PING:
                conn.send((worker_id, {"pong": True}, None, 0.0))
                continue
            start = time.perf_counter()
            try:
                result, reply_payload = programs[worker_id].handle(
                    op, args or {}, payload
                )
            except Exception as exc:  # surfaced at the master, see run_all
                conn.send(
                    (
                        worker_id,
                        {"__error__": "{}: {}".format(type(exc).__name__, exc)},
                        None,
                        time.perf_counter() - start,
                    )
                )
                continue
            conn.send(
                (worker_id, result, reply_payload, time.perf_counter() - start)
            )
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class LocalRuntime(Runtime):
    """Execution substrate backed by real OS processes.

    ``processes=0`` (the default) gives every logical worker its own
    process; smaller values pack contiguous worker ranges into shared
    processes (useful on small machines — the numerics are identical
    either way because each logical worker keeps its own program
    state).
    """

    name = "local"

    def __init__(
        self,
        n_workers: int,
        processes: int = 0,
        start_method: str = "fork",
        bandwidth: float = 1e9 / 8,
        latency: float = 0.0,
    ):
        check_positive(n_workers, "n_workers")
        check_non_negative(processes, "processes")
        if start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigurationError(
                "unknown start_method {!r}; expected fork, spawn or "
                "forkserver".format(start_method)
            )
        self._n_workers = int(n_workers)
        self.n_processes = min(int(processes) or self._n_workers, self._n_workers)
        self.start_method = start_method
        self._clock = WallClock()
        # Counter set only — transfer_time() is never consulted here.
        self._network = NetworkModel(bandwidth=bandwidth, latency=latency)
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List[object] = []
        self._workers_of_proc: List[List[int]] = []
        #: trace attached by the local executors (mirrors
        #: ``SimulatedCluster.engine_trace``)
        self.engine_trace = None
        self._started = False

    # ------------------------------------------------------------------
    # Runtime surface
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def clock(self) -> WallClock:
        return self._clock

    @property
    def network(self) -> NetworkModel:
        return self._network

    def gather(self, kind: MessageKind, sizes: Sequence[int]) -> float:
        """Account a workers -> master exchange (sizes in worker order)."""
        for worker_id, size in enumerate(sizes):
            self._network.send(Message(kind, worker_id, Message.MASTER, int(size)))
        return 0.0

    def broadcast(self, kind: MessageKind, size: int) -> float:
        """Account a master -> every-worker exchange."""
        for worker_id in range(self._n_workers):
            self._network.send(Message(kind, Message.MASTER, worker_id, int(size)))
        return 0.0

    def sharded_gather(
        self, kind: MessageKind, sizes: Sequence[int], n_servers: int
    ) -> float:
        check_positive(n_servers, "n_servers")
        return self.gather(kind, sizes)

    def sharded_broadcast(
        self, kind: MessageKind, size: int, n_servers: int
    ) -> float:
        check_positive(n_servers, "n_servers")
        return self.broadcast(kind, size)

    def allreduce(self, kind: MessageKind, size: int) -> float:
        n = self._n_workers
        if n == 1:
            return 0.0
        per_step = int(size / n)
        for step in range(2 * (n - 1)):
            self._network.send(
                Message(kind, step % n, (step + 1) % n, per_step)
            )
        return 0.0

    def barrier(self) -> None:
        """Round-trip a ping through every worker process."""
        if self._started:
            self.run_all(_PING)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def start(self, programs: Dict[int, object]) -> "LocalRuntime":
        """Launch the worker processes hosting ``programs``.

        ``programs`` maps every logical worker id ``0..K-1`` to an
        object with ``handle(op, args, payload) -> (result, payload)``.
        With the default ``fork`` start method the programs are
        inherited copy-on-write; with ``spawn`` they must pickle.
        """
        if self._started:
            raise SimulationError("LocalRuntime already started")
        missing = set(range(self._n_workers)) - set(programs)
        if missing:
            raise ConfigurationError(
                "no program for worker(s) {}".format(sorted(missing))
            )
        context = multiprocessing.get_context(self.start_method)
        bounds = [
            self._n_workers * i // self.n_processes
            for i in range(self.n_processes + 1)
        ]
        for i in range(self.n_processes):
            hosted = list(range(bounds[i], bounds[i + 1]))
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_process_main,
                args=(child_conn, {w: programs[w] for w in hosted}),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._workers_of_proc.append(hosted)
        self._started = True
        return self

    def close(self) -> None:
        """Stop and join every worker process (idempotent)."""
        if not self._started:
            return
        for conn in self._conns:
            try:
                conn.send((_STOP, -1, None, None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs, self._conns, self._workers_of_proc = [], [], []
        self._started = False

    # ------------------------------------------------------------------
    # real transport
    # ------------------------------------------------------------------
    def run_all(
        self,
        op: str,
        args: Optional[dict] = None,
        payload: Optional[bytes] = None,
        per_worker_args: Optional[Dict[int, dict]] = None,
    ) -> Exchange:
        """Issue ``op`` to every logical worker and collect the replies.

        ``payload`` (one blob for everyone — a broadcast) and ``args``
        are shared; ``per_worker_args`` entries are merged over ``args``
        for the targeted worker.  The exchange is measured wall-clock at
        the master; a worker-side exception aborts with
        :class:`~repro.errors.SimulationError` carrying the remote
        traceback summary.
        """
        if not self._started:
            raise SimulationError("LocalRuntime not started; call start()")
        start = time.perf_counter()
        for conn, hosted in zip(self._conns, self._workers_of_proc):
            for worker_id in hosted:
                merged = dict(args) if args else {}
                if per_worker_args and worker_id in per_worker_args:
                    merged.update(per_worker_args[worker_id])
                conn.send((op, worker_id, merged, payload))
        replies: Dict[int, WorkerReply] = {}
        for conn, hosted in zip(self._conns, self._workers_of_proc):
            for _ in hosted:
                try:
                    worker_id, result, reply_payload, seconds = conn.recv()
                except EOFError:
                    raise SimulationError(
                        "worker process died during op {!r}".format(op)
                    )
                if "__error__" in result:
                    raise SimulationError(
                        "op {!r} failed on worker {}: {}".format(
                            op, worker_id, result["__error__"]
                        )
                    )
                replies[worker_id] = WorkerReply(
                    worker=worker_id,
                    result=result,
                    payload=reply_payload,
                    seconds=float(seconds),
                )
        return Exchange(replies=replies, seconds=time.perf_counter() - start)

    def measure(self, fn: Callable[[], T]) -> Tuple[T, float]:
        """Run ``fn`` and return ``(result, wall seconds)``.

        The master-side counterpart of worker handler timing: executors
        wrap their reduce/update steps in this instead of importing
        ``time`` themselves (wall-clock access stays confined to this
        module).
        """
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start
