"""Pluggable execution substrates (see ``docs/runtime.md``).

The :class:`Runtime` contract covers the four things a training round
needs from the machine it runs on — clock, typed transport, barrier,
and RNG-stream routing.  Two backends implement it:

* :class:`SimRuntime` — the discrete-event simulator (bit-identical
  adapter over ``repro.sim`` + ``repro.net``);
* :class:`LocalRuntime` — real ``multiprocessing`` workers exchanging
  codec-encoded payloads, timed wall-clock, deadline-bounded transport
  (:class:`TimeoutPolicy`), and real fault injection
  (:class:`LocalChaos`: SIGKILL, stragglers, dropped/garbled replies)
  with respawn recovery (see ``docs/faults.md``).
"""

from repro.runtime.base import BACKENDS, Runtime, WallClock
from repro.runtime.chaos import LocalChaos, LocalFaultEvent, LocalFaultKind
from repro.runtime.deadline import TimeoutPolicy
from repro.runtime.local import (
    Exchange,
    LocalRuntime,
    WorkerDied,
    WorkerReply,
    WorkerTimeout,
)
from repro.runtime.sim import SimRuntime

__all__ = [
    "BACKENDS",
    "Exchange",
    "LocalChaos",
    "LocalFaultEvent",
    "LocalFaultKind",
    "LocalRuntime",
    "Runtime",
    "SimRuntime",
    "TimeoutPolicy",
    "WallClock",
    "WorkerDied",
    "WorkerReply",
    "WorkerTimeout",
]
