"""Seeded fault injection for the local (real-process) backend.

:class:`~repro.sim.chaos.ChaosSchedule` drives the simulator's fault
soak: Poisson arrivals in sim-time, each striking a random victim.  The
local backend cannot key faults off the sim clock — its clock is
*measured*, so a wall-clock-keyed plan would differ run to run.
:class:`LocalChaos` keeps the Poisson/MTBF semantics but puts the
arrival process on the **round axis**: exponential inter-arrival times
with mean ``mtbf_rounds``, a uniform victim and a uniform fault kind per
arrival, all drawn from one seeded generator — so a chaos plan is a
pure function of its seed and two runs with the same seed kill, stall,
and garble exactly the same workers at exactly the same iterations.

The faults are *real*:

* :data:`LocalFaultKind.KILL` — the victim's host process gets SIGKILL;
* :data:`LocalFaultKind.STALL` — the victim's handler sleeps
  ``stall_s`` seconds before working (a straggler; pushes against the
  transport deadline);
* :data:`LocalFaultKind.DROP` — the victim's next reply frame is
  discarded at the master (a lost message; recovered by deadline+retry);
* :data:`LocalFaultKind.GARBLE` — the victim's next reply frame arrives
  corrupt and is discarded on checksum (recovered by immediate retry).

A plan duck-types :class:`~repro.sim.failures.FailureInjector`
(``events_at`` / ``any_scheduled`` / ``validate`` / ``attach``) so
trainers accept it through the same ``failures=`` argument; scripted
plans (:meth:`LocalChaos.scripted`) replay exact scenarios the way
``FailureInjector`` replays Fig 13.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_non_negative, check_positive


class LocalFaultKind(enum.Enum):
    """Fault kinds the local backend can inject for real."""

    KILL = "kill"        # SIGKILL the victim's host process
    STALL = "stall"      # delay the victim's handler (straggler)
    DROP = "drop"        # lose the victim's next reply frame
    GARBLE = "garble"    # corrupt the victim's next reply frame


@dataclass(frozen=True)
class LocalFaultEvent:
    """One scheduled fault: strike ``worker`` at ``iteration``."""

    iteration: int
    kind: LocalFaultKind
    worker: int
    #: handler delay for STALL events (ignored by the other kinds)
    stall_s: float = 0.0

    def __post_init__(self):
        check_non_negative(self.iteration, "iteration")
        check_non_negative(self.worker, "worker")
        check_non_negative(self.stall_s, "stall_s")
        if not isinstance(self.kind, LocalFaultKind):
            raise ConfigurationError(
                "kind must be a LocalFaultKind, got {!r}".format(self.kind)
            )


class LocalChaos:
    """Seeded Poisson fault process on the round axis.

    Parameters
    ----------
    mtbf_rounds:
        Mean rounds between faults (exponential inter-arrival).  ``0``
        disables the random background — useful with ``events=`` for
        scripted scenarios.
    seed:
        Drives arrival times, victims, and kinds; the plan is a pure
        function of the seed.
    kinds:
        Fault kinds drawn uniformly per arrival.
    stall_s:
        Handler delay injected by STALL events.
    events:
        Fixed events overlaid on the random background (the local
        analogue of ``ChaosSchedule(base=...)``).
    """

    def __init__(
        self,
        mtbf_rounds: float = 0.0,
        seed: int = 0,
        kinds: Tuple[LocalFaultKind, ...] = (
            LocalFaultKind.KILL,
            LocalFaultKind.STALL,
            LocalFaultKind.DROP,
            LocalFaultKind.GARBLE,
        ),
        stall_s: float = 0.05,
        n_workers: Optional[int] = None,
        events: Iterable[LocalFaultEvent] = (),
    ):
        check_non_negative(mtbf_rounds, "mtbf_rounds")
        check_non_negative(seed, "seed")
        check_non_negative(stall_s, "stall_s")
        if mtbf_rounds and not kinds:
            raise ConfigurationError("kinds must name at least one LocalFaultKind")
        for kind in kinds:
            if not isinstance(kind, LocalFaultKind):
                raise ConfigurationError(
                    "kinds must be LocalFaultKind members, got {!r}".format(kind)
                )
        self.mtbf_rounds = float(mtbf_rounds)
        self.seed = int(seed)
        self.kinds = tuple(kinds)
        self.stall_s = float(stall_s)
        self.n_workers = n_workers
        self._scripted: Dict[int, List[LocalFaultEvent]] = {}
        for event in events:
            self._scripted.setdefault(event.iteration, []).append(event)
        self._rng = rng_from_seed(self.seed)
        self._next_arrival = (
            float(self._rng.exponential(self.mtbf_rounds))
            if self.mtbf_rounds
            else float("inf")
        )

    # ------------------------------------------------------------------
    @classmethod
    def scripted(
        cls,
        kills: Dict[int, int] = None,
        stalls: Dict[Tuple[int, int], float] = None,
        drops: Iterable[Tuple[int, int]] = (),
        garbles: Iterable[Tuple[int, int]] = (),
    ) -> "LocalChaos":
        """Exact scenario replay: ``kills={iteration: worker}``,
        ``stalls={(iteration, worker): seconds}``, ``drops``/``garbles``
        as ``(iteration, worker)`` pairs."""
        events = [
            LocalFaultEvent(t, LocalFaultKind.KILL, w)
            for t, w in (kills or {}).items()
        ]
        events += [
            LocalFaultEvent(t, LocalFaultKind.STALL, w, stall_s=s)
            for (t, w), s in (stalls or {}).items()
        ]
        events += [LocalFaultEvent(t, LocalFaultKind.DROP, w) for t, w in drops]
        events += [LocalFaultEvent(t, LocalFaultKind.GARBLE, w) for t, w in garbles]
        return cls(mtbf_rounds=0.0, events=events)

    # ------------------------------------------------------------------
    # FailureInjector duck-typing (trainers accept this via failures=)
    # ------------------------------------------------------------------
    def attach(self, cluster) -> None:
        """Adopt the cluster's width when ``n_workers`` was not given."""
        if self.n_workers is None:
            self.n_workers = int(cluster.n_workers)

    def validate(self, n_workers: int) -> None:
        check_positive(n_workers, "n_workers")
        if self.n_workers is None:
            self.n_workers = int(n_workers)
        for events in self._scripted.values():
            for event in events:
                if event.worker >= n_workers:
                    raise ConfigurationError(
                        "fault event targets worker {} but the job has "
                        "workers 0..{}".format(event.worker, n_workers - 1)
                    )

    def any_scheduled(self) -> bool:
        return bool(self.mtbf_rounds) or bool(self._scripted)

    def events_at(self, iteration: int) -> List[LocalFaultEvent]:
        """Scripted events plus every Poisson arrival due by round
        ``iteration``; must be called with non-decreasing iterations
        (the training loop's natural order)."""
        events = list(self._scripted.get(iteration, ()))
        while self._next_arrival <= iteration:
            if self.n_workers is None:
                raise ConfigurationError(
                    "LocalChaos needs n_workers before drawing victims; "
                    "trainers call validate()/attach() at construction"
                )
            kind = self.kinds[int(self._rng.integers(len(self.kinds)))]
            worker = int(self._rng.integers(self.n_workers))
            events.append(
                LocalFaultEvent(
                    iteration,
                    kind,
                    worker,
                    stall_s=self.stall_s if kind is LocalFaultKind.STALL else 0.0,
                )
            )
            self._next_arrival += float(self._rng.exponential(self.mtbf_rounds))
        return events

    def __repr__(self) -> str:
        return "LocalChaos(mtbf_rounds={}, seed={}, kinds={}, scripted={})".format(
            self.mtbf_rounds,
            self.seed,
            [k.value for k in self.kinds],
            sum(len(v) for v in self._scripted.values()),
        )
