"""The execution-substrate contract every backend implements.

A :class:`Runtime` bundles the four things a training round needs from
the machine it runs on, behind one small surface:

* a **clock** — monotone seconds (simulated for :class:`~repro.runtime.sim.SimRuntime`,
  measured for :class:`~repro.runtime.local.LocalRuntime`);
* typed **transport** — gather / broadcast / sharded variants /
  allreduce, each accounting per-:class:`~repro.net.message.MessageKind`
  traffic on a :class:`~repro.net.network.NetworkModel` counter set and
  returning the seconds the exchange took;
* a **barrier** — the BSP synchronization point between phases;
* **RNG-stream routing** — the deterministic per-iteration seed shared
  by every participant, so the same job seed draws the same batches on
  any backend (:func:`~repro.utils.rng.iteration_seed` is the single
  source of truth).

:class:`~repro.engine.RoundEngine` and the shared training loop talk to
this surface only; whether the seconds came from Table-I cost formulas
or from ``perf_counter`` around a real ``multiprocessing`` pipe is the
backend's business.  See ``docs/runtime.md`` for the backend matrix.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.net.message import MessageKind
from repro.utils.rng import iteration_seed
from repro.utils.validation import check_non_negative

#: Names of the built-in backends, as accepted by trainer configs.
BACKENDS = ("sim", "local")


class WallClock:
    """Accumulator of *measured* seconds with the SimClock surface.

    The local backend measures each exchange with a monotonic counter
    and advances this accumulator by the measured duration, so code
    that reads ``runtime.clock.now()`` sees elapsed training seconds on
    either backend — simulated on ``sim``, wall on ``local``.  Keeping
    the measurement at the call sites (rather than reading the host
    clock here) leaves this class free of wall-clock imports.
    """

    def __init__(self, start: float = 0.0):
        check_non_negative(start, "start")
        self._now = float(start)

    def now(self) -> float:
        """Accumulated measured seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Add a measured duration; returns the new total."""
        if seconds < 0:
            raise ValueError(
                "cannot advance clock by negative time {}".format(seconds)
            )
        self._now += float(seconds)
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Rewind for a fresh run."""
        check_non_negative(to, "to")
        self._now = float(to)

    def __repr__(self) -> str:
        return "WallClock(t={:.6f}s)".format(self._now)


class Runtime(abc.ABC):
    """Abstract execution substrate: clock + transport + barrier + RNG.

    Implementations expose ``clock`` and ``network`` as attributes or
    properties; transport methods return the seconds the exchange took
    (simulated or measured) and record every logical transfer on
    ``network`` so byte accounting works identically across backends.
    """

    #: short backend identifier ("sim", "local")
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n_workers(self) -> int:
        """Number of logical workers this runtime drives."""

    @property
    @abc.abstractmethod
    def clock(self):
        """The runtime's clock (``now``/``advance``/``reset``)."""

    @property
    @abc.abstractmethod
    def network(self):
        """Per-kind traffic counters (:class:`~repro.net.network.NetworkModel`)."""

    # ------------------------------------------------------------------
    # typed transport
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gather(self, kind: MessageKind, sizes: Sequence[int]) -> float:
        """Workers -> master; ``sizes[i]`` is sender i's payload bytes."""

    @abc.abstractmethod
    def broadcast(self, kind: MessageKind, size: int) -> float:
        """Master -> every worker, ``size`` bytes each."""

    @abc.abstractmethod
    def sharded_gather(
        self, kind: MessageKind, sizes: Sequence[int], n_servers: int
    ) -> float:
        """Workers -> S parameter servers (bytes split across servers)."""

    @abc.abstractmethod
    def sharded_broadcast(
        self, kind: MessageKind, size: int, n_servers: int
    ) -> float:
        """S servers -> every worker."""

    @abc.abstractmethod
    def allreduce(self, kind: MessageKind, size: int) -> float:
        """Ring allreduce of ``size`` bytes across the workers."""

    # ------------------------------------------------------------------
    # synchronization and determinism
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every worker reached the same point (no-op when
        the backend is already lock-step, as the simulator is)."""

    def round_seed(self, base_seed: int, iteration: int) -> int:
        """The per-iteration seed every participant derives identically.

        Routed through :func:`~repro.utils.rng.iteration_seed` on every
        backend — this is the contract the cross-backend determinism
        tests pin down.
        """
        return iteration_seed(base_seed, iteration)

    def close(self) -> None:
        """Release backend resources (worker processes, pipes)."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return "{}(name={!r}, n_workers={})".format(
            type(self).__name__, self.name, self.n_workers
        )
