"""Golden-trajectory regression tests (DESIGN invariant 1).

``tests/golden/trajectories.json`` holds loss curves and final
parameters — serialised as IEEE-754 hex, so equality means *bit*
equality — recorded on the pre-engine round loops.  Every combo is
replayed here on the current code; any drift in sampling, reduction
order, or update arithmetic fails loudly.

Regenerate the fixture only for an intentional numeric change::

    PYTHONPATH=src python tests/golden/record_golden.py
"""

import json
import pathlib
import sys

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
FIXTURE = GOLDEN_DIR / "trajectories.json"

sys.path.insert(0, str(GOLDEN_DIR))

from record_golden import record_all  # noqa: E402


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def replayed():
    return record_all()


def _keys():
    return sorted(json.loads(FIXTURE.read_text()))


def test_fixture_covers_every_combo(golden, replayed):
    assert sorted(replayed) == sorted(golden)


@pytest.mark.parametrize("key", _keys())
def test_trajectory_bit_identical(golden, replayed, key):
    want, got = golden[key], replayed[key]
    assert got["losses"] == want["losses"], (
        "{}: loss trajectory drifted from the pre-engine recording".format(key)
    )
    assert got["final_params"] == want["final_params"], (
        "{}: final parameters drifted from the pre-engine recording".format(key)
    )
