"""Unit tests for the two-phase sampling index."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import TwoPhaseIndex


class TestTwoPhaseIndex:
    @pytest.fixture
    def index(self):
        return TwoPhaseIndex({0: 10, 1: 10, 2: 5}, base_seed=7)

    def test_row_count(self, index):
        assert index.n_rows == 25
        assert index.n_blocks == 3

    def test_deterministic_across_callers(self, index):
        other = TwoPhaseIndex({0: 10, 1: 10, 2: 5}, base_seed=7)
        assert index.sample(3, 20) == other.sample(3, 20)

    def test_different_iterations_differ(self, index):
        assert index.sample(0, 20) != index.sample(1, 20)

    def test_different_seeds_differ(self, index):
        other = TwoPhaseIndex({0: 10, 1: 10, 2: 5}, base_seed=8)
        assert index.sample(0, 20) != other.sample(0, 20)

    def test_draws_in_range(self, index):
        sizes = {0: 10, 1: 10, 2: 5}
        for block_id, offset in index.sample(0, 200):
            assert block_id in sizes
            assert 0 <= offset < sizes[block_id]

    def test_rows_approximately_uniform(self):
        index = TwoPhaseIndex({0: 50, 1: 50}, base_seed=1)
        counts = np.zeros(100)
        for t in range(60):
            rows = index.to_global_rows(index.sample(t, 100))
            np.add.at(counts, rows, 1)
        # 6000 draws over 100 rows: each row ~60 expected
        assert counts.min() > 20
        assert counts.max() < 120

    def test_block_weighting_by_size(self):
        index = TwoPhaseIndex({0: 90, 1: 10}, base_seed=2)
        draws = index.sample(0, 2000)
        share_big = sum(1 for b, _ in draws if b == 0) / len(draws)
        assert 0.85 < share_big < 0.95

    def test_to_global_rows(self, index):
        assert index.to_global_rows([(0, 3)]).tolist() == [3]
        assert index.to_global_rows([(1, 0)]).tolist() == [10]
        assert index.to_global_rows([(2, 4)]).tolist() == [24]

    def test_to_global_rows_validation(self, index):
        with pytest.raises(PartitionError, match="unknown block"):
            index.to_global_rows([(9, 0)])
        with pytest.raises(PartitionError, match="offset"):
            index.to_global_rows([(2, 5)])

    def test_empty_layout_rejected(self):
        with pytest.raises(PartitionError):
            TwoPhaseIndex({})

    def test_zero_size_block_rejected(self):
        with pytest.raises(PartitionError):
            TwoPhaseIndex({0: 0})

    def test_batch_size_positive(self, index):
        with pytest.raises(ValueError):
            index.sample(0, 0)
