"""Unit tests for the linalg kernels in repro.linalg.ops."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.linalg import (
    CSRMatrix,
    accumulate_rows,
    accumulate_rows_squared,
    column_scale,
    row_dots,
    row_dots_squared,
)


@pytest.fixture
def matrix_and_dense(rng):
    dense = rng.normal(size=(7, 9))
    dense[rng.random(dense.shape) < 0.6] = 0.0
    return CSRMatrix.from_dense(dense), dense


class TestRowDots:
    def test_matches_dense_matmul(self, matrix_and_dense, rng):
        matrix, dense = matrix_and_dense
        w = rng.normal(size=9)
        assert np.allclose(row_dots(matrix, w), dense @ w)

    def test_empty_rows_are_zero(self):
        matrix = CSRMatrix.empty(3, 4)
        assert np.array_equal(row_dots(matrix, np.ones(4)), np.zeros(3))

    def test_shape_check(self, matrix_and_dense):
        matrix, _ = matrix_and_dense
        with pytest.raises(DimensionMismatchError):
            row_dots(matrix, np.ones(8))


class TestRowDotsSquared:
    def test_matches_dense(self, matrix_and_dense, rng):
        matrix, dense = matrix_and_dense
        w = rng.normal(size=9)
        assert np.allclose(row_dots_squared(matrix, w), (dense ** 2) @ w)

    def test_empty(self):
        matrix = CSRMatrix.empty(2, 3)
        assert np.array_equal(row_dots_squared(matrix, np.ones(3)), np.zeros(2))


class TestAccumulateRows:
    def test_matches_dense_transpose(self, matrix_and_dense, rng):
        matrix, dense = matrix_and_dense
        c = rng.normal(size=7)
        assert np.allclose(accumulate_rows(matrix, c), dense.T @ c)

    def test_squared_variant(self, matrix_and_dense, rng):
        matrix, dense = matrix_and_dense
        c = rng.normal(size=7)
        assert np.allclose(accumulate_rows_squared(matrix, c), (dense ** 2).T @ c)

    def test_empty_matrix(self):
        matrix = CSRMatrix.empty(3, 5)
        assert np.array_equal(accumulate_rows(matrix, np.ones(3)), np.zeros(5))
        assert np.array_equal(accumulate_rows_squared(matrix, np.ones(3)), np.zeros(5))

    def test_shape_check(self, matrix_and_dense):
        matrix, _ = matrix_and_dense
        with pytest.raises(DimensionMismatchError):
            accumulate_rows(matrix, np.ones(6))
        with pytest.raises(DimensionMismatchError):
            accumulate_rows_squared(matrix, np.ones(6))

    def test_transpose_identity(self, matrix_and_dense, rng):
        """<Xw, c> == <w, X^T c> — adjointness of the two kernels."""
        matrix, _ = matrix_and_dense
        w = rng.normal(size=9)
        c = rng.normal(size=7)
        lhs = np.dot(row_dots(matrix, w), c)
        rhs = np.dot(w, accumulate_rows(matrix, c))
        assert lhs == pytest.approx(rhs)


class TestColumnScale:
    def test_matches_dense(self, matrix_and_dense, rng):
        matrix, dense = matrix_and_dense
        f = rng.normal(size=9)
        assert np.allclose(column_scale(matrix, f).to_dense(), dense * f)

    def test_does_not_mutate_input(self, matrix_and_dense):
        matrix, dense = matrix_and_dense
        before = matrix.data.copy()
        column_scale(matrix, np.full(9, 2.0))
        assert np.array_equal(matrix.data, before)
