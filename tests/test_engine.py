"""The round engine: event queue, RoundSpec execution, sync policies,
trace emission, and the engine-trace Gantt rendering."""

from __future__ import annotations

import pytest

from repro.core.backup import BackupGroups
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.engine import (
    BackupSync,
    BarrierSync,
    CommPhase,
    ComputePhase,
    EventQueue,
    MasterPhase,
    RoundContext,
    RoundEngine,
    RoundSpec,
    StaleSync,
    TrafficEnvelope,
)
from repro.experiments.gantt import render_engine_trace
from repro.models.linear import LogisticRegression
from repro.net.message import MessageKind
from repro.optim.sgd import SGD


# ----------------------------------------------------------------------
# EventQueue
# ----------------------------------------------------------------------
class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop() for _ in range(3)] == [
            (1.0, "a"), (2.0, "b"), (3.0, "c")
        ]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        for payload in ("first", "second", "third"):
            queue.push(1.5, payload)
        assert [payload for _, payload in queue.drain()] == [
            "first", "second", "third"
        ]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(0.0, "x")
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue


# ----------------------------------------------------------------------
# RoundSpec validation
# ----------------------------------------------------------------------
class TestRoundSpec:
    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            RoundSpec(system="x", phases=())

    def test_duplicate_phase_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate phase name"):
            RoundSpec(
                system="x",
                phases=(
                    ComputePhase("a", run="_a"),
                    MasterPhase("a", run="_b"),
                ),
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown/later phase"):
            RoundSpec(
                system="x",
                phases=(ComputePhase("a", run="_a", after=("ghost",)),),
            )

    def test_self_reference_rejected(self):
        # a phase cannot depend on itself: its own name is not yet in
        # the set of earlier phases when its after= tuple is checked
        with pytest.raises(ValueError, match="unknown/later phase"):
            RoundSpec(
                system="x",
                phases=(ComputePhase("a", run="_a", after=("a",)),),
            )

    def test_duplicate_dependency_rejected(self):
        with pytest.raises(ValueError, match="duplicate dependency"):
            RoundSpec(
                system="x",
                phases=(
                    ComputePhase("a", run="_a"),
                    MasterPhase("b", run="_b", after=("a", "a")),
                ),
            )

    def test_empty_after_on_first_phase_is_valid(self):
        # after=() means "start at round offset 0" — legal anywhere,
        # including on the first phase where it changes nothing
        spec = RoundSpec(
            system="x",
            phases=(
                ComputePhase("a", run="_a", after=()),
                ComputePhase("b", run="_b", after=()),
            ),
        )
        assert spec.phases[0].after == ()

    def test_unknown_comm_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown comm pattern"):
            CommPhase(
                "p", kind=MessageKind.CONTROL, pattern="gossip", sizes="_s"
            )

    def test_sharded_pattern_needs_servers(self):
        with pytest.raises(ValueError, match="servers"):
            CommPhase(
                "p",
                kind=MessageKind.CONTROL,
                pattern="sharded_gather",
                sizes="_s",
            )

    def test_comm_kinds_in_phase_order(self):
        spec = RoundSpec(
            system="x",
            phases=(
                CommPhase(
                    "push",
                    kind=MessageKind.GRADIENT_PUSH,
                    pattern="gather",
                    sizes="_s",
                ),
                CommPhase(
                    "pull",
                    kind=MessageKind.MODEL_PULL,
                    pattern="broadcast",
                    sizes="_z",
                ),
            ),
        )
        assert spec.comm_kinds() == (
            MessageKind.GRADIENT_PUSH,
            MessageKind.MODEL_PULL,
        )


# ----------------------------------------------------------------------
# engine execution on a stub trainer: scheduling, overlap, expectations
# ----------------------------------------------------------------------
class _StubTrainer:
    """Two compute phases (one overlapping the round), a gather, a join."""

    def __init__(self, cluster):
        self.cluster = cluster

    def round_spec(self) -> RoundSpec:
        return RoundSpec(
            system="stub",
            sync=BarrierSync(),
            phases=(
                ComputePhase("work", run="_phase_work", synchronized=True),
                CommPhase(
                    "push",
                    kind=MessageKind.STATISTICS_PUSH,
                    pattern="gather",
                    sizes="_push_sizes",
                ),
                # overlaps the whole round: starts at offset 0
                ComputePhase("background", run="_phase_background", after=()),
                MasterPhase("join", run="_phase_join", after=("push", "background")),
            ),
        )

    def _phase_work(self, ctx):
        return {w: 2.0 - w * 0.5 for w in range(self.cluster.n_workers)}

    def _phase_background(self, ctx):
        return {w: 0.5 for w in range(self.cluster.n_workers)}

    def _phase_join(self, ctx):
        return 0.25

    def _push_sizes(self, ctx):
        return [100] * self.cluster.n_workers


class TestEngineScheduling:
    def test_overlapping_phase_is_hidden(self, cluster4):
        trainer = _StubTrainer(cluster4)
        engine = RoundEngine(trainer, cluster4)
        outcome = engine.run_round(0)
        push = outcome.phase_seconds["push"]
        # background (0.5s from offset 0) hides under work (2.0s), so the
        # round is work + push + join, not background + anything.
        assert outcome.duration == pytest.approx(2.0 + push + 0.25)
        assert outcome.phase_seconds["background"] == pytest.approx(0.5)

    def test_trace_records_overlap_offsets(self, cluster4):
        trainer = _StubTrainer(cluster4)
        engine = RoundEngine(trainer, cluster4)
        engine.run_round(0)
        events = {e.phase: e for e in engine.trace.round_events(0)}
        assert events["work"].start == 0.0
        assert events["background"].start == 0.0
        assert events["push"].start == pytest.approx(2.0)
        assert events["join"].start == pytest.approx(
            max(events["push"].end, events["background"].end)
        )

    def test_trace_events_sorted_by_start_with_fifo_ties(self, cluster4):
        trainer = _StubTrainer(cluster4)
        engine = RoundEngine(trainer, cluster4)
        engine.run_round(0)
        names = [e.phase for e in engine.trace.round_events(0)]
        # work and background tie at offset 0; work was declared first
        assert names == ["work", "background", "push", "join"]

    def test_expected_traffic_derived_from_comm_phase(self, cluster4):
        trainer = _StubTrainer(cluster4)
        outcome = RoundEngine(trainer, cluster4).run_round(0)
        count, total = outcome.expected[MessageKind.STATISTICS_PUSH]
        assert count == cluster4.n_workers
        assert total == 100 * cluster4.n_workers

    def test_emitted_messages_match_expectation(self, cluster4):
        trainer = _StubTrainer(cluster4)
        RoundEngine(trainer, cluster4).run_round(0)
        assert (
            cluster4.network.bytes_of_kind(MessageKind.STATISTICS_PUSH)
            == 100 * cluster4.n_workers
        )


# ----------------------------------------------------------------------
# sync policies
# ----------------------------------------------------------------------
class TestSyncPolicies:
    def test_barrier_waits_for_slowest(self):
        ctx = RoundContext(0, None, None)
        policy = BarrierSync()
        assert policy.resolve(ctx, {0: 1.0, 1: 3.0, 2: 2.0}) == 3.0
        assert ctx.chosen == {0, 1, 2}

    def test_barrier_skips_failed_workers(self):
        ctx = RoundContext(0, None, None)
        policy = BarrierSync()
        assert policy.resolve(ctx, {0: 1.0, 1: float("inf")}) == 1.0
        assert ctx.chosen == {0}

    def test_backup_ends_at_recovery_and_kills_stragglers(self):
        ctx = RoundContext(0, None, None)
        policy = BackupSync(BackupGroups(4, backup=1))
        # groups (0,1) and (2,3); fastest per group: 1 (1.0) and 2 (2.0)
        duration = policy.resolve(ctx, {0: 9.0, 1: 1.0, 2: 2.0, 3: 8.0})
        assert duration == 2.0
        assert ctx.chosen == {1, 2}
        assert ctx.killed == {0, 3}

    def test_stale_sync_gates_on_stale_commit(self):
        policy = StaleSync(staleness=0, n_workers=2)
        ctx0 = RoundContext(0, None, None)
        policy.before_round(ctx0)
        assert ctx0.start_times == [0.0, 0.0]
        assert policy.resolve(ctx0, {0: 1.0, 1: 2.0}) == 2.0
        assert policy.round_duration(ctx0, 2.0) == 2.0
        assert policy.commits == [2.0]

        # staleness 0: round 1 may only start once round 0 committed
        ctx1 = RoundContext(1, None, None)
        policy.before_round(ctx1)
        assert ctx1.start_times == [2.0, 2.0]

    def test_stale_sync_pipeline_can_run_ahead(self):
        policy = StaleSync(staleness=2, n_workers=2)
        ctx0 = RoundContext(0, None, None)
        policy.before_round(ctx0)
        policy.resolve(ctx0, {0: 1.0, 1: 4.0})
        policy.round_duration(ctx0, 4.0)
        # with slack, round 1 starts from per-worker free times, not the
        # commit barrier
        ctx1 = RoundContext(1, None, None)
        policy.before_round(ctx1)
        assert ctx1.start_times == [1.0, 4.0]

    def test_stale_sync_duration_clamped_at_zero(self):
        policy = StaleSync(staleness=1, n_workers=1)
        ctx = RoundContext(0, None, None)
        policy.commits = [5.0]
        ctx.t = 1
        assert policy.round_duration(ctx, -1.0) == 0.0
        assert policy.commits == [5.0, 4.0]


# ----------------------------------------------------------------------
# traffic envelopes (satellite: SSP stays protocol-checked)
# ----------------------------------------------------------------------
class TestTrafficEnvelope:
    def test_exact_is_degenerate_envelope(self):
        env = TrafficEnvelope.exact(4, 1024)
        assert env.check(MessageKind.MODEL_PULL, 4, 1024) == []

    def test_out_of_range_count_and_bytes(self):
        env = TrafficEnvelope(2, 4, 100, 200)
        problems = env.check(MessageKind.GRADIENT_PUSH, 5, 50)
        assert len(problems) == 2
        assert any("message" in p for p in problems)
        assert any("byte" in p for p in problems)

    def test_in_range_passes(self):
        env = TrafficEnvelope(2, 4, 100, 200)
        assert env.check(MessageKind.GRADIENT_PUSH, 3, 150) == []

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            TrafficEnvelope(4, 2, 0, 0)
        with pytest.raises(ValueError):
            TrafficEnvelope(0, 0, 200, 100)


# ----------------------------------------------------------------------
# EngineTrace on a real trainer + gantt rendering + cluster reset
# ----------------------------------------------------------------------
def make_driver(cluster, data, **config_kwargs):
    config = ColumnSGDConfig(
        batch_size=64, iterations=2, eval_every=0, **config_kwargs
    )
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config=config)
    driver.load(data)
    return driver


class TestEngineTrace:
    def test_fit_leaves_trace_on_cluster(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.fit()
        trace = cluster4.engine_trace
        assert trace is not None and trace.system == "ColumnSGD"
        assert trace.rounds() == [0, 1]
        comm = [e for e in trace.round_events(0) if e.category == "comm"]
        assert {e.kind for e in comm} == {
            "statistics_push", "statistics_bcast"
        }

    def test_phase_totals_cover_every_phase(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.fit()
        totals = cluster4.engine_trace.phase_totals()
        assert set(totals) == {
            "compute_statistics", "gather", "prefetch_batch", "reduce",
            "broadcast", "update_model",
        }
        assert all(seconds >= 0.0 for seconds in totals.values())

    def test_sim_offsets_are_absolute(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.run_round(0)
        for event in cluster4.engine_trace.round_events(0):
            assert event.sim_end - event.sim_start == pytest.approx(
                event.duration
            )

    def test_reset_clears_engine_trace(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.fit()
        assert cluster4.engine_trace is not None
        cluster4.reset()
        assert cluster4.engine_trace is None

    def test_render_engine_trace(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.fit()
        art = render_engine_trace(cluster4.engine_trace, round_index=0)
        assert "round 0 (ColumnSGD" in art
        for phase in (
            "compute_statistics", "gather", "reduce", "broadcast", "update_model"
        ):
            assert phase in art
        assert "(statistics_push)" in art

    def test_render_empty_trace(self):
        assert "no engine trace" in render_engine_trace(None)

    def test_render_missing_round(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        driver.run_round(0)
        assert "not in trace" in render_engine_trace(
            cluster4.engine_trace, round_index=7
        )
