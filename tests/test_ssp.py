"""Tests for the bounded-staleness (SSP) parameter server."""

import numpy as np
import pytest

from repro.baselines import (
    ParameterServerTrainer,
    RowSGDConfig,
    StaleSyncPSTrainer,
    make_trainer,
)
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel


def fit(trainer_cls, data, straggler=None, iterations=20, **kwargs):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    config = RowSGDConfig(batch_size=64, iterations=iterations, eval_every=10, seed=3)
    trainer = trainer_cls(
        LogisticRegression(), SGD(0.5), cluster, config=config,
        straggler=straggler, **kwargs,
    )
    trainer.load(data)
    return trainer.fit()


class TestSSP:
    def test_zero_staleness_equals_bsp_exactly(self, small_binary):
        bsp = fit(ParameterServerTrainer, small_binary)
        ssp = fit(StaleSyncPSTrainer, small_binary, staleness=0)
        assert np.allclose(bsp.final_params, ssp.final_params, atol=1e-12)

    def test_zero_staleness_equal_time(self, small_binary):
        bsp = fit(ParameterServerTrainer, small_binary)
        ssp = fit(StaleSyncPSTrainer, small_binary, staleness=0)
        assert ssp.total_sim_time == pytest.approx(bsp.total_sim_time, rel=0.05)

    def test_staleness_absorbs_transient_stragglers(self, small_binary):
        def straggler():
            return StragglerModel(4, level=5.0, seed=7)

        bsp = fit(ParameterServerTrainer, small_binary, straggler=straggler(),
                  iterations=30)
        ssp = fit(StaleSyncPSTrainer, small_binary, straggler=straggler(),
                  staleness=3, iterations=30)
        assert ssp.avg_iteration_seconds() < 0.7 * bsp.avg_iteration_seconds()

    def test_stale_run_still_converges(self, small_binary):
        ssp = fit(
            StaleSyncPSTrainer, small_binary,
            straggler=StragglerModel(4, level=5.0, seed=7),
            staleness=3, iterations=50,
        )
        losses = [l for _, _, l in ssp.losses()]
        assert losses[-1] < 0.9 * losses[0]

    def test_stale_trajectory_differs_under_stragglers(self, small_binary):
        def straggler():
            return StragglerModel(4, level=5.0, seed=7)

        bsp = fit(ParameterServerTrainer, small_binary, straggler=straggler())
        ssp = fit(StaleSyncPSTrainer, small_binary, straggler=straggler(),
                  staleness=3)
        # gradients computed on stale versions -> different (but close) model
        assert not np.array_equal(bsp.final_params, ssp.final_params)
        assert np.allclose(bsp.final_params, ssp.final_params, atol=0.1)

    def test_pipeline_staleness_without_stragglers(self, small_binary):
        """With s >= 1 and uniform workers, the pipeline settles into a
        steady one-version lag: the trajectory deviates slightly from
        BSP but stays close and converges — classic SSP behaviour."""
        bsp = fit(ParameterServerTrainer, small_binary, iterations=40)
        ssp = fit(StaleSyncPSTrainer, small_binary, staleness=5, iterations=40)
        assert not np.array_equal(bsp.final_params, ssp.final_params)
        assert np.allclose(bsp.final_params, ssp.final_params, atol=0.05)
        losses = [l for _, _, l in ssp.losses()]
        assert losses[-1] < 0.9 * losses[0]

    def test_system_name(self, small_binary):
        ssp = fit(StaleSyncPSTrainer, small_binary, staleness=2, iterations=2)
        assert ssp.system == "Petuum-SSP2"

    def test_registry(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        trainer = make_trainer(
            "petuum-ssp", LogisticRegression(), SGD(0.5), cluster,
            batch_size=32, iterations=3, eval_every=0, staleness=2,
        )
        trainer.load(small_binary)
        assert trainer.fit().n_iterations >= 3

    def test_validation(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(ValueError):
            StaleSyncPSTrainer(LogisticRegression(), SGD(0.5), cluster,
                               staleness=-1)
