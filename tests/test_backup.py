"""Unit tests for backup groups and the master's recovery rule."""

import numpy as np
import pytest

from repro.core import BackupGroups, ColumnMaster
from repro.errors import PartitionError, StatisticsRecoveryError


class TestBackupGroups:
    def test_no_backup_singletons(self):
        groups = BackupGroups(4, backup=0)
        assert groups.n_groups == 4
        assert groups.groups() == [(0,), (1,), (2,), (3,)]
        assert groups.partitions_of_worker(2) == (2,)

    def test_one_backup_pairs(self):
        groups = BackupGroups(6, backup=1)
        assert groups.n_groups == 3
        assert groups.groups()[0] == (0, 1)
        assert groups.partitions_of_worker(0) == (0, 1)
        assert groups.partitions_of_worker(1) == (0, 1)
        assert groups.replicas_of_partition(3) == (2, 3)

    def test_divisibility_enforced(self):
        with pytest.raises(PartitionError):
            BackupGroups(5, backup=1)

    def test_group_of(self):
        groups = BackupGroups(8, backup=3)
        assert groups.group_of(0) == 0
        assert groups.group_of(7) == 1
        with pytest.raises(PartitionError):
            groups.group_of(8)

    def test_select_survivors_prefers_first_alive(self):
        groups = BackupGroups(4, backup=1)
        assert groups.select_survivors(frozenset()) == [0, 2]
        assert groups.select_survivors(frozenset({0})) == [1, 2]

    def test_select_survivors_raises_on_dead_group(self):
        groups = BackupGroups(4, backup=1)
        with pytest.raises(StatisticsRecoveryError) as err:
            groups.select_survivors(frozenset({2, 3}))
        assert err.value.missing_groups == (1,)

    def test_fastest_per_group(self):
        groups = BackupGroups(4, backup=1)
        assert groups.fastest_per_group([5.0, 1.0, 2.0, 9.0]) == [1, 2]

    def test_fastest_per_group_all_inf(self):
        groups = BackupGroups(2, backup=1)
        with pytest.raises(StatisticsRecoveryError):
            groups.fastest_per_group([float("inf"), float("inf")])


class TestMasterReduce:
    def stats(self, value, shape=(3, 1)):
        return np.full(shape, float(value))

    def test_sum_without_backup(self):
        master = ColumnMaster(BackupGroups(3, backup=0))
        reduced = master.reduce({0: self.stats(1), 1: self.stats(2), 2: self.stats(4)})
        assert np.all(reduced == 7.0)

    def test_one_contribution_per_group(self):
        """With backup, replicas are NOT double-counted."""
        master = ColumnMaster(BackupGroups(4, backup=1))
        stats = {w: self.stats(10 + w) for w in range(4)}
        reduced = master.reduce(stats)
        # groups (0,1) and (2,3): first member each -> 10 + 12
        assert np.all(reduced == 22.0)

    def test_fastest_finisher_chosen(self):
        master = ColumnMaster(BackupGroups(4, backup=1))
        stats = {w: self.stats(10 + w) for w in range(4)}
        reduced = master.reduce(stats, finish_times=[9.0, 1.0, 1.0, 9.0])
        assert np.all(reduced == 11.0 + 12.0)

    def test_recovers_with_dead_straggler(self):
        """Fig 6: worker1 straggles, worker2's replica statistics suffice."""
        master = ColumnMaster(BackupGroups(2, backup=1))
        reduced = master.reduce({0: None, 1: self.stats(5)})
        assert np.all(reduced == 5.0)

    def test_whole_group_dead_raises(self):
        master = ColumnMaster(BackupGroups(2, backup=1))
        with pytest.raises(StatisticsRecoveryError):
            master.reduce({0: None, 1: None})

    def test_dead_worker_with_finish_times(self):
        master = ColumnMaster(BackupGroups(2, backup=1))
        reduced = master.reduce(
            {0: None, 1: self.stats(3)}, finish_times=[0.1, 5.0]
        )
        assert np.all(reduced == 3.0)

    def test_does_not_mutate_contributions(self):
        master = ColumnMaster(BackupGroups(2, backup=0))
        a, b = self.stats(1), self.stats(2)
        master.reduce({0: a, 1: b})
        assert np.all(a == 1.0) and np.all(b == 2.0)
