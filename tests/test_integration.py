"""End-to-end integration tests: paper-scenario shapes at tiny scale."""

import numpy as np
import pytest

from repro import (
    CLUSTER1,
    ColumnSGDConfig,
    ColumnSGDDriver,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    StragglerModel,
    make_classification,
    make_trainer,
    train_columnsgd,
)
from repro.datasets import load_profile


class TestPublicApi:
    def test_quickstart_from_docstring(self):
        data = make_classification(1000, 2000, seed=0)
        cluster = SimulatedCluster(CLUSTER1)
        result = train_columnsgd(
            data, LogisticRegression(), SGD(learning_rate=1.0), cluster,
            batch_size=100, iterations=20,
        )
        assert result.final_loss() < np.log(2)

    def test_all_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestFig8Shape:
    """ColumnSGD reaches a target loss before MLlib on large models."""

    def test_columnsgd_beats_mllib_time_to_loss(self):
        data = make_classification(2000, 100_000, nnz_per_row=10, seed=8)
        results = {}
        for name in ("columnsgd", "mllib"):
            cluster = SimulatedCluster(CLUSTER1)
            trainer = make_trainer(
                name, LogisticRegression(), SGD(1.0), cluster,
                batch_size=200, iterations=30, eval_every=5, seed=8,
            )
            trainer.load(data)
            results[name] = trainer.fit()
        target = 0.9 * np.log(2)
        col_time = results["columnsgd"].time_to_loss(target)
        mllib_time = results["mllib"].time_to_loss(target)
        assert col_time is not None and mllib_time is not None
        assert col_time < mllib_time


class TestFig11Shape:
    """Scalability w.r.t. cluster size: loading speeds up, per-iteration
    time stays roughly flat."""

    def test_loading_scales_with_workers(self):
        data = load_profile("wx").generate(seed=1, rows=4000, features=20_000)
        times = {}
        for k in (4, 16):
            cluster = SimulatedCluster(CLUSTER1.with_workers(k))
            config = ColumnSGDConfig(batch_size=100, iterations=1, eval_every=0,
                                     block_size=256)
            driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
            report = driver.load(data)
            times[k] = report.seconds
        assert times[16] < times[4]

    def test_iteration_time_flat_in_workers(self):
        data = make_classification(4000, 20_000, nnz_per_row=10, seed=2)
        times = {}
        for k in (4, 16):
            cluster = SimulatedCluster(CLUSTER1.with_workers(k))
            result = train_columnsgd(
                data, LogisticRegression(), SGD(1.0), cluster,
                batch_size=100, iterations=8, eval_every=0,
            )
            times[k] = result.avg_iteration_seconds()
        assert times[16] < 2 * times[4]


class TestFig4Shape:
    """Batch size effects: tiny batches thrash, huge batches cost time."""

    def test_small_batch_converges_noisily(self):
        data = make_classification(3000, 300, nnz_per_row=10, seed=3)
        finals = {}
        for batch in (4, 256):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            result = train_columnsgd(
                data, LogisticRegression(), SGD(0.5), cluster,
                batch_size=batch, iterations=80, eval_every=4, seed=3,
            )
            losses = np.array([l for _, _, l in result.losses()][1:])
            finals[batch] = losses
        # thrash metric: mean upward movement between evals
        def thrash(losses):
            diffs = np.diff(losses)
            return float(np.mean(np.maximum(diffs, 0)))

        assert thrash(finals[4]) > thrash(finals[256])

    def test_per_iteration_time_monotone_beyond_floor(self):
        data = make_classification(3000, 300, nnz_per_row=10, seed=3)
        times = []
        for batch in (16, 256, 2048):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            result = train_columnsgd(
                data, LogisticRegression(), SGD(0.1), cluster,
                batch_size=batch, iterations=6, eval_every=0,
            )
            times.append(result.avg_iteration_seconds())
        assert times[0] <= times[1] <= times[2]


class TestStragglerIntegration:
    def test_fig9_full_story(self, tiny_binary):
        """pure < backup-with-straggler << SL5 pure."""
        def run(backup, straggler):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            config = ColumnSGDConfig(batch_size=32, iterations=10, eval_every=0,
                                     seed=1, block_size=64, backup=backup)
            driver = ColumnSGDDriver(
                LogisticRegression(), SGD(0.5), cluster, config=config,
                straggler=straggler,
            )
            driver.load(tiny_binary)
            return driver.fit().avg_iteration_seconds()

        pure = run(0, None)
        sl5 = run(0, StragglerModel(4, level=5.0, seed=2))
        backed = run(1, StragglerModel(4, level=5.0, seed=2))
        # backup with a straggler costs about the same as pure (Fig 9) ...
        assert backed == pytest.approx(pure, rel=0.2)
        # ... while the unprotected straggled run is clearly slower
        assert sl5 > 1.5 * backed
