"""Unit tests for regularizers."""

import numpy as np
import pytest

from repro.models import L1, L2, NoRegularizer


class TestNoRegularizer:
    def test_zero_everything(self):
        reg = NoRegularizer()
        w = np.array([1.0, -2.0])
        assert reg.penalty(w) == 0.0
        assert np.array_equal(reg.gradient(w), np.zeros(2))


class TestL2:
    def test_penalty(self):
        reg = L2(0.5)
        assert reg.penalty(np.array([3.0, 4.0])) == pytest.approx(0.25 * 25)

    def test_gradient(self):
        reg = L2(2.0)
        assert np.array_equal(reg.gradient(np.array([1.0, -1.0])), [2.0, -2.0])

    def test_gradient_matches_numeric(self, rng):
        reg = L2(0.3)
        w = rng.normal(size=10)
        eps = 1e-6
        for i in range(10):
            up, down = w.copy(), w.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (reg.penalty(up) - reg.penalty(down)) / (2 * eps)
            assert reg.gradient(w)[i] == pytest.approx(numeric, abs=1e-5)

    def test_matrix_params(self):
        reg = L2(1.0)
        w = np.ones((3, 2))
        assert reg.penalty(w) == pytest.approx(3.0)
        assert reg.gradient(w).shape == (3, 2)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            L2(-1.0)


class TestL1:
    def test_penalty(self):
        assert L1(2.0).penalty(np.array([1.0, -3.0])) == pytest.approx(8.0)

    def test_gradient_signs(self):
        grad = L1(1.5).gradient(np.array([2.0, -2.0, 0.0]))
        assert grad.tolist() == [1.5, -1.5, 0.0]

    def test_separability(self, rng):
        """Penalty decomposes over coordinate partitions (the locality
        property ColumnSGD relies on)."""
        reg = L1(0.7)
        w = rng.normal(size=20)
        parts = [w[0::2], w[1::2]]
        assert reg.penalty(w) == pytest.approx(sum(reg.penalty(p) for p in parts))
