"""Unit tests for pointwise losses, including derivative checks."""

import numpy as np
import pytest

from repro.models import HingeLoss, LogisticLoss, SquaredLoss


def numeric_derivative(loss, scores, labels, eps=1e-6):
    up = loss.loss(scores + eps, labels)
    down = loss.loss(scores - eps, labels)
    return (up - down) / (2 * eps)


class TestLogisticLoss:
    def test_value_at_zero_margin(self):
        loss = LogisticLoss()
        assert loss.loss(np.zeros(3), np.ones(3)) == pytest.approx(np.log(2))

    def test_derivative_matches_numeric(self, rng):
        loss = LogisticLoss()
        scores = rng.normal(size=50) * 3
        labels = rng.choice([-1.0, 1.0], 50)
        assert np.allclose(
            loss.derivative(scores, labels),
            numeric_derivative(loss, scores, labels),
            atol=1e-5,
        )

    def test_numerically_stable_at_extremes(self):
        loss = LogisticLoss()
        scores = np.array([-1000.0, 1000.0])
        labels = np.array([1.0, 1.0])
        values = loss.loss(scores, labels)
        assert np.isfinite(values).all()
        assert values[0] == pytest.approx(1000.0)
        assert values[1] == pytest.approx(0.0)
        assert np.isfinite(loss.derivative(scores, labels)).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticLoss().loss(np.zeros(2), np.zeros(3))


class TestHingeLoss:
    def test_value(self):
        loss = HingeLoss()
        scores = np.array([2.0, 0.5, -1.0])
        labels = np.array([1.0, 1.0, 1.0])
        assert loss.loss(scores, labels).tolist() == [0.0, 0.5, 2.0]

    def test_derivative_active_inactive(self):
        loss = HingeLoss()
        scores = np.array([2.0, 0.5])
        labels = np.array([1.0, 1.0])
        assert loss.derivative(scores, labels).tolist() == [0.0, -1.0]

    def test_derivative_matches_numeric_away_from_kink(self, rng):
        loss = HingeLoss()
        scores = rng.normal(size=50) * 3
        labels = rng.choice([-1.0, 1.0], 50)
        margins = labels * scores
        safe = np.abs(margins - 1.0) > 1e-3
        assert np.allclose(
            loss.derivative(scores, labels)[safe],
            numeric_derivative(loss, scores, labels)[safe],
            atol=1e-5,
        )


class TestSquaredLoss:
    def test_value(self):
        loss = SquaredLoss()
        assert loss.loss(np.array([3.0]), np.array([1.0]))[0] == pytest.approx(2.0)

    def test_derivative_matches_numeric(self, rng):
        loss = SquaredLoss()
        scores = rng.normal(size=30)
        labels = rng.normal(size=30)
        assert np.allclose(
            loss.derivative(scores, labels),
            numeric_derivative(loss, scores, labels),
            atol=1e-5,
        )
