"""Unit tests for the LIBSVM reader/writer."""

import io

import numpy as np
import pytest

from repro.datasets import make_classification, read_libsvm, write_libsvm
from repro.datasets.libsvm import iter_libsvm
from repro.errors import LibsvmFormatError


SAMPLE = """\
+1 1:0.5 3:1.5
-1 2:2.0
+1 1:1.0 2:1.0 4:4.0
"""


class TestRead:
    def test_one_based_autodetect(self):
        data = read_libsvm(io.StringIO(SAMPLE))
        assert data.n_rows == 3
        assert data.n_features == 4
        assert data.labels.tolist() == [1.0, -1.0, 1.0]
        assert data.features.row(0).indices.tolist() == [0, 2]

    def test_zero_based_autodetect(self):
        text = "1 0:1.0 2:1.0\n-1 1:2.0\n"
        data = read_libsvm(io.StringIO(text))
        assert data.n_features == 3
        assert data.features.row(0).indices.tolist() == [0, 2]

    def test_explicit_n_features(self):
        data = read_libsvm(io.StringIO(SAMPLE), n_features=10)
        assert data.n_features == 10

    def test_n_features_too_small(self):
        with pytest.raises(ValueError):
            read_libsvm(io.StringIO(SAMPLE), n_features=2)

    def test_comments_and_blank_lines(self):
        text = "# header\n\n+1 1:1.0 # trailing\n"
        data = read_libsvm(io.StringIO(text))
        assert data.n_rows == 1

    def test_empty_file(self):
        data = read_libsvm(io.StringIO(""))
        assert data.n_rows == 0
        assert data.n_features == 0

    def test_bad_label(self):
        with pytest.raises(LibsvmFormatError, match="label"):
            list(iter_libsvm(io.StringIO("abc 1:1\n")))

    def test_missing_colon(self):
        with pytest.raises(LibsvmFormatError, match="':'"):
            list(iter_libsvm(io.StringIO("1 12\n")))

    def test_bad_value(self):
        with pytest.raises(LibsvmFormatError):
            list(iter_libsvm(io.StringIO("1 1:x\n")))

    def test_negative_index(self):
        with pytest.raises(LibsvmFormatError, match="negative"):
            list(iter_libsvm(io.StringIO("1 -2:1.0\n")))

    def test_error_carries_line_number(self):
        try:
            list(iter_libsvm(io.StringIO("1 1:1\nbad 1:1\n")))
        except LibsvmFormatError as err:
            assert err.line_number == 2
        else:
            pytest.fail("expected LibsvmFormatError")


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        data = make_classification(50, 30, seed=13)
        path = tmp_path / "data.libsvm"
        write_libsvm(data, path)
        loaded = read_libsvm(path, n_features=30)
        assert loaded.n_rows == data.n_rows
        assert np.array_equal(loaded.labels, data.labels)
        assert loaded.features == data.features

    def test_zero_based_roundtrip(self):
        data = make_classification(20, 15, seed=14)
        buf = io.StringIO()
        write_libsvm(data, buf, zero_based=True)
        buf.seek(0)
        loaded = read_libsvm(buf, n_features=15, zero_based=True)
        assert loaded.features == data.features

    def test_file_path_round_trip(self, tmp_path):
        data = make_classification(10, 8, seed=15)
        path = str(tmp_path / "x.txt")
        write_libsvm(data, path)
        assert read_libsvm(path, n_features=8).n_rows == 10


class TestGzipTransparency:
    """Paths ending in .gz read and write through gzip automatically."""

    def test_round_trip(self, tmp_path):
        data = make_classification(25, 12, seed=21)
        path = str(tmp_path / "data.libsvm.gz")
        write_libsvm(data, path)
        loaded = read_libsvm(path, n_features=12)
        assert loaded.features == data.features
        np.testing.assert_array_equal(loaded.labels, data.labels)

    def test_file_really_is_gzip(self, tmp_path):
        data = make_classification(5, 6, seed=22)
        path = tmp_path / "data.gz"
        write_libsvm(data, str(path))
        with open(path, "rb") as handle:
            magic = handle.read(2)
        assert magic == b"\x1f\x8b"

    def test_iter_streams_compressed(self, tmp_path):
        data = make_classification(8, 5, seed=23)
        path = str(tmp_path / "rows.gz")
        write_libsvm(data, path)
        rows = list(iter_libsvm(path))
        assert len(rows) == 8
        label, indices, values = rows[0]
        assert indices.size == values.size

    def test_plain_path_still_plain(self, tmp_path):
        data = make_classification(5, 6, seed=24)
        path = tmp_path / "plain.txt"
        write_libsvm(data, str(path))
        with open(path, "rb") as handle:
            assert handle.read(2) != b"\x1f\x8b"
