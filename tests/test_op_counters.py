"""Op-counter semantics and the sparse-kernel edge cases they exposed.

The counters (:mod:`repro.linalg.counters`) are the dynamic check of
the R015/R016 primitive-cost axioms: disabled they must cost nothing
and count nothing; enabled they must accumulate across kernel calls
and never perturb numeric results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg import CSRMatrix, OP_COUNTERS, OpCounters, SparseVector
from repro.sim.cost import WORK_LEDGER


@pytest.fixture(autouse=True)
def _quiesce_counters():
    """Leave the process-wide singletons disabled and zeroed."""
    OP_COUNTERS.reset()
    OP_COUNTERS.disable()
    WORK_LEDGER.reset()
    WORK_LEDGER.disable()
    yield
    OP_COUNTERS.reset()
    OP_COUNTERS.disable()
    WORK_LEDGER.reset()
    WORK_LEDGER.disable()


# ----------------------------------------------------------------------
# counter semantics
# ----------------------------------------------------------------------
def test_disabled_counters_stay_zero():
    counters = OpCounters()
    counters.add_flops(10)
    counters.add_alloc(5)
    counters.add_densify(7)
    assert counters.snapshot() == {
        "flops": 0,
        "alloc_elements": 0,
        "densify_events": 0,
        "peak_alloc_elements": 0,
    }


def test_enabled_counters_accumulate():
    counters = OpCounters()
    counters.enable()
    counters.add_flops(10)
    counters.add_flops(3)
    counters.add_alloc(5)
    counters.add_densify(100)
    snap = counters.snapshot()
    assert snap["flops"] == 13
    assert snap["alloc_elements"] == 105  # densify bytes count as allocs
    assert snap["densify_events"] == 1
    assert snap["peak_alloc_elements"] == 100


def test_reset_zeroes_but_preserves_enabled_state():
    counters = OpCounters()
    counters.enable()
    counters.add_flops(4)
    counters.reset()
    assert counters.snapshot()["flops"] == 0
    counters.add_flops(2)
    assert counters.snapshot()["flops"] == 2  # still enabled after reset


def test_singleton_records_kernel_work():
    OP_COUNTERS.enable()
    v = SparseVector(np.array([1, 5]), np.array([2.0, 3.0]), dim=10)
    dense = np.ones(10)
    v.dot(dense)
    snap = OP_COUNTERS.snapshot()
    assert snap["flops"] >= 2 * v.nnz
    assert snap["densify_events"] == 0


def test_to_dense_counts_a_densify_event():
    OP_COUNTERS.enable()
    v = SparseVector(np.array([0]), np.array([1.0]), dim=1000)
    v.to_dense()
    snap = OP_COUNTERS.snapshot()
    assert snap["densify_events"] == 1
    assert snap["peak_alloc_elements"] >= 1000


def test_counters_never_change_numerics():
    v = SparseVector(np.array([2, 7]), np.array([1.5, -2.0]), dim=12)
    dense = np.arange(12, dtype=np.float64)
    quiet = v.dot(dense)
    OP_COUNTERS.enable()
    counted = v.dot(dense)
    assert counted == quiet


def test_work_ledger_records_and_resets():
    WORK_LEDGER.enable()
    WORK_LEDGER.record_sparse(100)
    WORK_LEDGER.record_dense(40)
    snap = WORK_LEDGER.snapshot()
    assert snap["sparse_units"] == 100
    assert snap["dense_units"] == 40
    WORK_LEDGER.reset()
    assert WORK_LEDGER.snapshot()["sparse_units"] == 0
    WORK_LEDGER.disable()
    WORK_LEDGER.record_sparse(5)
    assert WORK_LEDGER.snapshot()["sparse_units"] == 0


# ----------------------------------------------------------------------
# sparse-kernel edge cases
# ----------------------------------------------------------------------
def test_sparse_vector_dim_zero():
    v = SparseVector.empty(0)
    assert v.dim == 0
    assert v.nnz == 0
    assert v.to_dense().shape == (0,)
    assert v.dot(np.zeros(0)) == 0.0


def test_sparse_vector_all_zero_construction():
    v = SparseVector.from_dense(np.zeros(8))
    assert v.nnz == 0
    assert v.norm_sq() == 0.0
    assert np.array_equal(v.to_dense(), np.zeros(8))


def test_sparse_vector_to_dense_round_trip():
    dense = np.zeros(16)
    dense[[3, 9, 15]] = [1.0, -2.5, 4.0]
    v = SparseVector.from_dense(dense)
    assert np.array_equal(v.to_dense(), dense)
    again = SparseVector.from_dense(v.to_dense())
    assert again == v


def test_csr_zero_column_matrix():
    m = CSRMatrix.empty(3, 0)
    assert m.shape == (3, 0)
    assert m.nnz == 0
    assert m.to_dense().shape == (3, 0)


def test_csr_all_zero_rows_round_trip():
    rows = [SparseVector.empty(5) for _ in range(4)]
    m = CSRMatrix.from_rows(rows, n_cols=5)
    assert m.nnz == 0
    assert np.array_equal(m.to_dense(), np.zeros((4, 5)))
    assert CSRMatrix.from_dense(m.to_dense()) == m


def test_csr_to_dense_round_trip_counts_once_per_call():
    dense = np.zeros((2, 6))
    dense[0, 1] = 3.0
    dense[1, 4] = -1.0
    m = CSRMatrix.from_dense(dense)
    OP_COUNTERS.enable()
    assert np.array_equal(m.to_dense(), dense)
    assert np.array_equal(m.to_dense(), dense)
    assert OP_COUNTERS.snapshot()["densify_events"] == 2
