"""Every (system x model) combination trains — the trainer interface is
model-generic, so FM on MXNet or MLR on MLlib* must just work."""

import numpy as np
import pytest

from repro.baselines import make_trainer, TRAINER_REGISTRY
from repro.datasets import make_classification, make_multiclass
from repro.models import (
    FactorizationMachine,
    LinearSVM,
    LogisticRegression,
    MultinomialLogisticRegression,
)
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster

SYSTEMS = sorted(TRAINER_REGISTRY)


def fit(system, model, data, lr=0.5):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    trainer = make_trainer(
        system, model, SGD(lr), cluster,
        batch_size=64, iterations=8, eval_every=4, seed=13,
    )
    trainer.load(data)
    return trainer.fit()


class TestCrossSystemModels:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_fm_trains_on_every_system(self, system, tiny_gaussian):
        result = fit(system, FactorizationMachine(n_factors=2), tiny_gaussian,
                     lr=0.05)
        assert result.n_iterations >= 8
        assert np.isfinite(result.final_loss())

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_mlr_trains_on_every_system(self, system, tiny_multiclass):
        result = fit(system, MultinomialLogisticRegression(n_classes=4),
                     tiny_multiclass)
        assert np.isfinite(result.final_loss())

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_svm_trains_on_every_system(self, system, tiny_gaussian):
        result = fit(system, LinearSVM(), tiny_gaussian, lr=0.2)
        assert np.isfinite(result.final_loss())

    def test_fm_traffic_shape_across_systems(self):
        """FM widens ColumnSGD's statistics but not MXNet's sparse pulls
        relative to their LR traffic in the same proportion — the Table V
        structure at tiny scale."""
        data = make_classification(400, 3000, nnz_per_row=8, seed=14,
                                   binary_features=False)
        bytes_of = {}
        for system in ("columnsgd", "mxnet"):
            for name, model, lr in (
                ("lr", LogisticRegression(), 0.5),
                ("fm", FactorizationMachine(n_factors=10), 0.02),
            ):
                result = fit(system, model, data, lr=lr)
                bytes_of[(system, name)] = result.records[-1].bytes_sent
        column_ratio = bytes_of[("columnsgd", "fm")] / bytes_of[("columnsgd", "lr")]
        mxnet_ratio = bytes_of[("mxnet", "fm")] / bytes_of[("mxnet", "lr")]
        assert column_ratio == pytest.approx(11.0, rel=0.15)
        assert mxnet_ratio == pytest.approx(11.0, rel=0.15)
