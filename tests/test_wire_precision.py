"""Tests for the fp32 statistics wire format."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.models import LogisticRegression
from repro.net import MessageKind
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


def run(data, precision, iterations=15):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    config = ColumnSGDConfig(
        batch_size=64, iterations=iterations, eval_every=5, seed=3,
        block_size=64, wire_precision=precision,
    )
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
    driver.load(data)
    result = driver.fit()
    return cluster, result


class TestWirePrecision:
    def test_fp32_halves_statistics_traffic(self, tiny_binary):
        c64, _ = run(tiny_binary, "fp64", iterations=3)
        c32, _ = run(tiny_binary, "fp32", iterations=3)
        push64 = c64.network.bytes_of_kind(MessageKind.STATISTICS_PUSH)
        push32 = c32.network.bytes_of_kind(MessageKind.STATISTICS_PUSH)
        # headers aside, payload halves
        assert push32 < 0.6 * push64

    def test_fp32_still_converges(self, small_binary):
        _, result = run(small_binary, "fp32", iterations=40)
        losses = [l for _, _, l in result.losses()]
        assert losses[-1] < 0.9 * losses[0]

    def test_fp32_close_but_not_identical_to_fp64(self, tiny_gaussian):
        _, r64 = run(tiny_gaussian, "fp64")
        _, r32 = run(tiny_gaussian, "fp32")
        assert not np.array_equal(r64.final_params, r32.final_params)
        assert np.allclose(r64.final_params, r32.final_params, atol=1e-3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ColumnSGDConfig(wire_precision="fp16")

    def test_wire_value_bytes(self):
        assert ColumnSGDConfig(wire_precision="fp64").wire_value_bytes == 8
        assert ColumnSGDConfig(wire_precision="fp32").wire_value_bytes == 4
