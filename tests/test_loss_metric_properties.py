"""Property-based tests on losses and metrics (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import accuracy, log_loss, roc_auc
from repro.models import HingeLoss, HuberLoss, LogisticLoss, SquaredHingeLoss, SquaredLoss

FINITE = st.floats(-50, 50, allow_nan=False)


@st.composite
def scored_batches(draw, regression=False, min_size=2):
    n = draw(st.integers(min_size, 40))
    scores = np.asarray(draw(st.lists(FINITE, min_size=n, max_size=n)))
    if regression:
        labels = np.asarray(draw(st.lists(FINITE, min_size=n, max_size=n)))
    else:
        labels = np.asarray(
            draw(st.lists(st.sampled_from([-1.0, 1.0]), min_size=n, max_size=n))
        )
    return scores, labels


CLASSIFICATION_LOSSES = [LogisticLoss(), HingeLoss(), SquaredHingeLoss()]
REGRESSION_LOSSES = [SquaredLoss(), HuberLoss(delta=1.0)]


class TestLossProperties:
    @given(scored_batches())
    @settings(max_examples=60)
    def test_classification_losses_nonnegative(self, batch):
        scores, labels = batch
        for loss in CLASSIFICATION_LOSSES:
            assert np.all(loss.loss(scores, labels) >= 0.0)

    @given(scored_batches(regression=True))
    @settings(max_examples=60)
    def test_regression_losses_nonnegative(self, batch):
        scores, labels = batch
        for loss in REGRESSION_LOSSES:
            assert np.all(loss.loss(scores, labels) >= 0.0)

    @given(scored_batches())
    @settings(max_examples=60)
    def test_losses_decrease_in_margin(self, batch):
        """Classification losses are non-increasing in y*s."""
        scores, labels = batch
        for loss in CLASSIFICATION_LOSSES:
            better = loss.loss(scores + labels * 0.5, labels)
            worse = loss.loss(scores, labels)
            assert np.all(better <= worse + 1e-9)

    @given(scored_batches(), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_convexity_midpoint(self, batch, w):
        """l(w a + (1-w) b) <= w l(a) + (1-w) l(b) for every loss."""
        scores, labels = batch
        other = -scores
        for loss in CLASSIFICATION_LOSSES:
            mid = loss.loss(w * scores + (1 - w) * other, labels)
            chord = w * loss.loss(scores, labels) + (1 - w) * loss.loss(other, labels)
            assert np.all(mid <= chord + 1e-8)

    @given(scored_batches())
    @settings(max_examples=60)
    def test_logistic_derivative_bounded_by_one(self, batch):
        scores, labels = batch
        assert np.all(np.abs(LogisticLoss().derivative(scores, labels)) <= 1.0)

    @given(scored_batches(regression=True), st.floats(0.1, 5.0))
    @settings(max_examples=60)
    def test_huber_derivative_bounded_by_delta(self, batch, delta):
        scores, labels = batch
        loss = HuberLoss(delta=delta)
        assert np.all(np.abs(loss.derivative(scores, labels)) <= delta + 1e-12)


class TestMetricProperties:
    @given(scored_batches(min_size=4))
    @settings(max_examples=60)
    def test_accuracy_in_unit_interval(self, batch):
        scores, labels = batch
        probs = 1.0 / (1.0 + np.exp(-scores))
        assert 0.0 <= accuracy(labels, probs) <= 1.0

    @given(scored_batches(min_size=4))
    @settings(max_examples=60)
    def test_log_loss_nonnegative(self, batch):
        scores, labels = batch
        probs = 1.0 / (1.0 + np.exp(-scores))
        assert log_loss(labels, probs) >= 0.0

    @given(scored_batches(min_size=4))
    @settings(max_examples=60)
    def test_auc_flip_symmetry(self, batch):
        """AUC(labels, s) + AUC(labels, -s) == 1 (up to tie handling)."""
        scores, labels = batch
        if len(set(labels.tolist())) < 2:
            return
        forward = roc_auc(labels, scores)
        backward = roc_auc(labels, -scores)
        # ties land at 0.5 either way, so the identity is exact
        assert forward + backward == np.float64(1.0) or abs(
            forward + backward - 1.0
        ) < 1e-9

    @given(scored_batches(min_size=4))
    @settings(max_examples=60)
    def test_auc_label_flip_complements(self, batch):
        scores, labels = batch
        if len(set(labels.tolist())) < 2:
            return
        assert abs(roc_auc(labels, scores) + roc_auc(-labels, scores) - 1.0) < 1e-9
