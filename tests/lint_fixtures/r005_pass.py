"""R005 pass: specific exception types, or broad catch that re-raises."""

from repro.errors import SimulationError


def deliver(network, message, log):
    try:
        network.send(message)
    except SimulationError:
        return None
    try:
        network.send(message)
    except Exception:
        log.append("delivery failed")
        raise
