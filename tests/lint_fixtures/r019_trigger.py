"""R019 trigger: copies and whole-file reads inside the store."""

import numpy as np


def densify_shard(shard, block):
    dense = shard.toarray()                     # densifies the payload
    matrix = block.todense()                    # ditto, matrix flavour
    return dense, matrix


def copy_payload(payload):
    values = np.asarray(payload.data)           # silent copy
    packed = np.ascontiguousarray(payload.indices)  # silent copy
    return values, packed


def slurp(path):
    with open(path, "rb") as handle:
        everything = handle.read()              # whole file in memory
    with open(path, "r") as handle:
        lines = handle.readlines()              # ditto, line flavour
    return everything, lines
