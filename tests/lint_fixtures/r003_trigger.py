"""R003 trigger: wall-clock time in simulated-time code."""

import time


def measure(network, message):
    start = time.perf_counter()
    network.send(message)
    time.sleep(0.01)
    return time.perf_counter() - start
