"""R010 pass: emission (through a self-call) matches the declaration."""


class MessageKind:
    MODEL_PULL = "model_pull"
    GRADIENT_PUSH = "gradient_push"


class Message:
    def __init__(self, kind, src, dst, size_bytes):
        self.kind = kind
        self.size_bytes = size_bytes


def steady_model_bytes():
    return 0


class SteadyTrainer:
    def _run_iteration(self, net, t):
        self._emit(net)
        self._round_expected = {
            MessageKind.MODEL_PULL: (1, steady_model_bytes()),
        }

    def _emit(self, net):
        net.send(Message(MessageKind.MODEL_PULL, -1, 0, steady_model_bytes()))
