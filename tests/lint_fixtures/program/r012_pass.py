"""R012 pass: the same overlap shape, with disjoint effects.

``consume`` still runs concurrent with the whole round but touches its
own scratch key; ``left`` and ``right`` still share a dependency but
write distinct attributes, so every unordered pair is conflict-free.
"""


class OverlapTrainer:
    def round_spec(self):
        return RoundSpec(
            system="overlap",
            sync=None,
            phases=(
                ComputePhase(
                    "produce", run="_phase_produce", synchronized=False
                ),
                ComputePhase(
                    "consume",
                    run="_phase_consume",
                    synchronized=False,
                    after=(),
                ),
                MasterPhase("left", run="_phase_left", after=("produce",)),
                MasterPhase("right", run="_phase_right", after=("produce",)),
            ),
        )

    def _phase_produce(self, ctx):
        self._stash(ctx)
        return {}

    def _stash(self, ctx):
        ctx.scratch["batch"] = 1

    def _phase_consume(self, ctx):
        ctx.scratch["prefetched"] = 2
        return {}

    def _phase_left(self, ctx):
        self.left_total = 1
        return 0.0

    def _phase_right(self, ctx):
        self.right_total = 2
        return 0.0
