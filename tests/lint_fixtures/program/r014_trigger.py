"""R014 trigger: unordered comm phases emit the same message kind.

``push_a`` and ``push_b`` overlap (``after=()``) and both emit
``STATS_PUSH`` — on the wire their messages interleave
nondeterministically and nothing can attribute bytes to a phase.
"""


class MessageKind:
    STATS_PUSH = "stats_push"


class ChatterTrainer:
    def round_spec(self):
        return RoundSpec(
            system="chatter",
            sync=None,
            phases=(
                CommPhase(
                    "push_a",
                    kind=MessageKind.STATS_PUSH,
                    pattern="gather",
                    sizes="_push_sizes",
                ),
                CommPhase(
                    "push_b",
                    kind=MessageKind.STATS_PUSH,
                    pattern="gather",
                    sizes="_push_sizes",
                    after=(),
                ),
            ),
        )

    def _push_sizes(self, ctx):
        return [8, 8]
