"""R010 trigger: round-loop traffic drifts from the declaration.

``DriftTrainer`` emits ``MODEL_PULL`` but declares ``GRADIENT_PUSH`` as
its expected per-round traffic — exactly the code/declaration drift the
static extractor exists to catch before a runtime repro does.
"""


class MessageKind:
    MODEL_PULL = "model_pull"
    GRADIENT_PUSH = "gradient_push"


class Message:
    def __init__(self, kind, src, dst, size_bytes):
        self.kind = kind
        self.size_bytes = size_bytes


def drift_model_bytes():
    return 0


class DriftTrainer:
    def _run_iteration(self, net, t):
        net.send(Message(MessageKind.MODEL_PULL, -1, 0, drift_model_bytes()))
        self._round_expected = {
            MessageKind.GRADIENT_PUSH: (1, drift_model_bytes()),
        }
