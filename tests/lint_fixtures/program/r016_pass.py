"""R016 pass: inferred cost class matches the charged class.

``HonestTrainer``'s compute executor does O(nnz) kernel work and
charges ``sparse_work(nnz)``; its master executor loops over the model
dimension and charges ``dense_work`` with a dimension-classed size
term.  Selecting R016 reports nothing.
"""


class HonestTrainer:
    def round_spec(self):
        return RoundSpec(
            system="honest",
            sync=None,
            phases=(
                ComputePhase("compute", run="_phase_compute"),
                MasterPhase("update", run="_phase_update"),
            ),
        )

    def _phase_compute(self, ctx):
        batch = self.sample(ctx.t)
        margin = batch.dot(self.local_weights)
        seconds = self.cost.sparse_work(batch.nnz, passes=2)
        return {0: seconds + float(margin)}

    def _phase_update(self, ctx):
        for j in range(self.dim):
            self.apply(j)
        return self.cost.dense_work(self.model_elements)
