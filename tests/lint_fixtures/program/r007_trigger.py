"""R007 trigger: an entropy source reached through project helpers.

``jitter_seed`` draws from an unseeded generator (that call itself is
R001's business); the two call sites below reach it transitively, which
only the whole-program analysis can see.
"""

import numpy as np


def jitter_seed():
    return int(np.random.default_rng().integers(0, 1 << 31))


def hidden_reseed():
    return jitter_seed() + 1


def schedule_batch(iteration):
    return hidden_reseed() ^ iteration
