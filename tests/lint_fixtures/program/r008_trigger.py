"""R008 trigger: wall-clock reached two frames below a clock update.

``read_clock`` calls ``time.monotonic()`` directly (R003's business);
``stamp_round`` and ``advance_clock`` reach it through project calls,
which only the whole-program analysis can see.
"""

import time


def read_clock():
    return time.monotonic()


def stamp_round():
    return read_clock() + 0.5


def advance_clock(sim_now):
    return max(sim_now, stamp_round())
