"""R008 pass: the same call shape, with simulated time threaded in."""


def stamp_round_pure(now):
    return now + 0.5


def advance_clock_pure(sim_now, now):
    return max(sim_now, stamp_round_pure(now))
