"""R015 trigger: three densification sites on an executor's hot path.

``DenseTrainer._phase_compute`` reaches — directly and through a
helper — a ``to_dense()`` call, an O(d)-sized ``np.zeros`` allocation,
and a sparse value coerced dense via ``np.asarray``.  Selecting R015
yields exactly three findings, each carrying the witness call chain.
"""


class DenseTrainer:
    def round_spec(self):
        return RoundSpec(
            system="dense",
            sync=None,
            phases=(
                ComputePhase("compute", run="_phase_compute"),
                MasterPhase("update", run="_phase_update"),
            ),
        )

    def _phase_compute(self, ctx):
        batch = self.sample(ctx.t)
        dense = batch.to_dense()
        return {0: float(dense.sum())}

    def _phase_update(self, ctx):
        grad = self._merge(ctx)
        buffer = np.zeros(self.dim)
        buffer += grad
        return 0.0

    def _merge(self, ctx):
        sparse = SparseVector.from_dict(ctx.scratch["updates"], self.dim)
        return np.asarray(sparse)
