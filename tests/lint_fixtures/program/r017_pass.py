"""R017 pass: accumulate in a dict, construct the SparseVector once.

The loop only mutates a plain dict; the single ``SparseVector``
construction happens after the loop, and a fresh per-row vector that
never feeds back into itself is fine too.  Selecting R017 reports
nothing.
"""


def merge_gradients(grads, dim):
    acc = {}
    for g in grads:
        for idx, val in g.items():
            acc[idx] = acc.get(idx, 0.0) + val
    return SparseVector.from_dict(acc, dim)


def rows_to_vectors(rows, dim):
    out = []
    for row in rows:
        vec = SparseVector.from_dict(row, dim)
        out.append(vec)
    return out
