"""R007 pass: the same call shape, with the generator threaded in.

Every draw comes from a caller-provided seeded generator, so no path
reaches an entropy source.
"""


def derive_seed(rng):
    return int(rng.integers(0, 1 << 31))


def schedule_batch_seeded(rng, iteration):
    return derive_seed(rng) ^ iteration
