"""R013 trigger: the declared effect sets drifted from the code.

``work`` declares it reads ``self.stale_input`` — but the executor now
reads ``ctx.budget`` and writes ``self.total``, neither declared.  The
declaration kept compiling while the refactor moved on; only the
cross-check against the inferred effects notices.
"""


class DriftedTrainer:
    def round_spec(self):
        return RoundSpec(
            system="drifted",
            sync=None,
            phases=(
                ComputePhase(
                    "work",
                    run="_phase_work",
                    synchronized=False,
                    reads=("self.stale_input",),
                    writes=(),
                ),
            ),
        )

    def _phase_work(self, ctx):
        self.total = ctx.budget
        return {}
