"""R014 pass: overlapping comm phases with distinct message kinds.

Same ``after=()`` overlap as the trigger, but each phase emits its own
kind, so every wire message stays attributable to exactly one phase.
"""


class MessageKind:
    STATS_PUSH = "stats_push"
    MODEL_BCAST = "model_bcast"


class PoliteTrainer:
    def round_spec(self):
        return RoundSpec(
            system="polite",
            sync=None,
            phases=(
                CommPhase(
                    "push",
                    kind=MessageKind.STATS_PUSH,
                    pattern="gather",
                    sizes="_push_sizes",
                ),
                CommPhase(
                    "bcast",
                    kind=MessageKind.MODEL_BCAST,
                    pattern="broadcast",
                    sizes="_bcast_size",
                    after=(),
                ),
            ),
        )

    def _push_sizes(self, ctx):
        return [8, 8]

    def _bcast_size(self, ctx):
        return 8
