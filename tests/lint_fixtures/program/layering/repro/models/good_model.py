"""R011 pass: a models-layer module importing only pure layers."""

from repro.linalg.sparse import SparseVector


def make_vector():
    return SparseVector.empty(0)
