"""R011 trigger: a models-layer module importing the simulator.

The directory layout puts this file at ``repro/models/...`` so the
analysis assigns it to the ``models`` layer; the import below reaches
the ``sim`` layer directly.
"""

from repro.sim.clock import SimClock


def make_clock():
    return SimClock()
