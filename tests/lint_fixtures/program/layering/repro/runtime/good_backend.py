"""R011 pass: a runtime-layer backend importing only transport layers.

Backends may use the message vocabulary and the network accounting —
those are the substrate they implement — just never the trainers that
ride on them.
"""

from repro.net.message import Message


def account(kind, size):
    return Message(kind, 0, -1, size)
