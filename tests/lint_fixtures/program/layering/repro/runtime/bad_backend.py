"""R011 trigger: a runtime-layer backend importing a trainer.

The directory layout puts this file at ``repro/runtime/...`` so the
analysis assigns it to the ``runtime`` layer; the import below reaches
the ``core`` trainer layer directly, welding the backend to one
algorithm.
"""

from repro.core.driver import ColumnSGDDriver


def make_driver(model, optimizer, cluster):
    return ColumnSGDDriver(model, optimizer, cluster)
