"""R013 pass: declarations that match the inferred effect sets."""


class HonestTrainer:
    def round_spec(self):
        return RoundSpec(
            system="honest",
            sync=None,
            phases=(
                ComputePhase(
                    "work",
                    run="_phase_work",
                    synchronized=False,
                    reads=("ctx.budget",),
                    writes=("self.total",),
                ),
                MasterPhase("tally", run="_phase_tally"),
            ),
        )

    def _phase_work(self, ctx):
        self.total = ctx.budget
        return {}

    def _phase_tally(self, ctx):
        # undeclared phases are not checked at all
        self.grand_total = self.total
        return 0.0
