"""R012 trigger: overlapped phases race on shared round state.

``RacyTrainer`` declares ``consume`` concurrent with the whole round
(``after=()``) while ``produce`` writes — through a helper, so only
interprocedural inference sees it — the scratch key ``consume`` reads;
``left`` and ``right`` share a dependency but both write the same
trainer attribute.  Two findings: one write/read, one write/write.
"""


class RacyTrainer:
    def round_spec(self):
        return RoundSpec(
            system="racy",
            sync=None,
            phases=(
                ComputePhase(
                    "produce", run="_phase_produce", synchronized=False
                ),
                ComputePhase(
                    "consume",
                    run="_phase_consume",
                    synchronized=False,
                    after=(),
                ),
                MasterPhase("left", run="_phase_left", after=("produce",)),
                MasterPhase("right", run="_phase_right", after=("produce",)),
            ),
        )

    def _phase_produce(self, ctx):
        self._stash(ctx)
        return {}

    def _stash(self, ctx):
        ctx.scratch["batch"] = 1

    def _phase_consume(self, ctx):
        return {0: float(len(ctx.scratch["batch"]))}

    def _phase_left(self, ctx):
        self.totals = 1
        return 0.0

    def _phase_right(self, ctx):
        self.totals = 2
        return 0.0
