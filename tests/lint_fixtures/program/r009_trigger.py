"""R009 trigger: hand-written byte sizes crossing function boundaries.

``4096`` reaches the ``Message`` constructor two calls away (through
two return values); ``512`` crosses one parameter boundary.  Neither is
visible to the per-file R002 trace.
"""


class Message:
    def __init__(self, kind, src, dst, size_bytes):
        self.kind = kind
        self.size_bytes = size_bytes


def payload_bytes():
    return 4096


def frame_bytes():
    return payload_bytes()


def send_frame(net):
    net.send(Message("DATA", 0, 1, frame_bytes()))


def send_padded(net, pad):
    net.send(Message("DATA", 0, 1, pad))


def relay(net):
    send_padded(net, 512)
