"""R009 pass: byte sizes derived from named constants survive the same
cross-function flow."""

RECORD_OVERHEAD_BYTES = 64
RECORD_VALUE_BYTES = 8


class Message:
    def __init__(self, kind, src, dst, size_bytes):
        self.kind = kind
        self.size_bytes = size_bytes


def record_bytes(n_values):
    return RECORD_OVERHEAD_BYTES + n_values * RECORD_VALUE_BYTES


def send_record(net, n_values):
    net.send(Message("DATA", 0, 1, record_bytes(n_values)))
