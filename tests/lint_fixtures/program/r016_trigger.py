"""R016 trigger: an executor does O(d) work but charges O(nnz).

``DriftTrainer._phase_compute`` loops over ``range(self.dim)`` — O(d)
work with no densifying allocation, so only the cost-class comparison
can catch it — while charging the cost model ``sparse_work(nnz)``.
Selecting R016 yields exactly one finding, anchored at the loop.
"""


class DriftTrainer:
    def round_spec(self):
        return RoundSpec(
            system="drift",
            sync=None,
            phases=(ComputePhase("compute", run="_phase_compute"),),
        )

    def _phase_compute(self, ctx):
        batch = self.sample(ctx.t)
        total = 0.0
        for j in range(self.dim):
            total += self.lookup(j)
        seconds = self.cost.sparse_work(batch.nnz, passes=2)
        return {0: seconds + total}
