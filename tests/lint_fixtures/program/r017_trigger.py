"""R017 trigger: immutable SparseVector rebuilt from itself in a loop.

Both loops rebuild an accumulator through a ``SparseVector``
constructor every iteration — O(nnz) copying per step, O(nnz^2) total.
Selecting R017 yields exactly two findings.
"""


def merge_gradients(grads, dim):
    acc = SparseVector.empty(dim)
    for g in grads:
        acc = SparseVector(acc.indices, acc.values + g.values, dim)
    return acc


def fold_updates(updates, dim):
    total = SparseVector.empty(dim)
    while updates:
        total += SparseVector.from_dict(updates.pop(), dim)
    return total
