"""R015 pass: the hot path stays sparse; densification exists only in
code no executor reaches.

``SparseTrainer``'s executors use O(nnz) kernels and batch-sized
buffers; ``debug_dump`` calls ``to_dense()`` but is never reachable
from a phase, so selecting R015 reports nothing.
"""


class SparseTrainer:
    def round_spec(self):
        return RoundSpec(
            system="sparse",
            sync=None,
            phases=(
                ComputePhase("compute", run="_phase_compute"),
                MasterPhase("update", run="_phase_update"),
            ),
        )

    def _phase_compute(self, ctx):
        batch = self.sample(ctx.t)
        scores = np.zeros(self.batch_size)
        for row in batch.iter_rows():
            scores += row.dot(self.weights_for(row))
        return {0: float(scores.sum())}

    def _phase_update(self, ctx):
        delta = ctx.scratch["gradient"].restrict(self.local_indices)
        self.apply(delta.scale(self.rate))
        return 0.0

    def debug_dump(self):
        return self.model_vector.to_dense()
