"""R006 pass: every numeric field validated in __post_init__."""

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CheckedConfig:
    batch_size: int = 100
    learning_rate: float = 0.1
    seed: int = 0

    def __post_init__(self):
        check_positive(self.batch_size, "batch_size")
        check_positive(self.learning_rate, "learning_rate")
        check_non_negative(self.seed, "seed")
