"""R002 trigger: Message sizes built from bare numeric literals."""

from repro.net.message import Message, MessageKind


def ship(network, n_elements):
    size = n_elements * 8 + 64
    network.send(Message(MessageKind.WORKSET, 0, 1, size))
    network.send(Message(MessageKind.CONTROL, 0, 1, size_bytes=int(n_elements * 12)))
