"""R001 pass: all randomness derived from the job seed via repro.utils.rng."""

from repro.utils.rng import iteration_seed, rng_from_seed


def draw(base_seed, iteration):
    rng = rng_from_seed(iteration_seed(base_seed, iteration))
    return rng.integers(0, 10)
