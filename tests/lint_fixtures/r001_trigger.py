"""R001 trigger: global/unseeded entropy sources."""

import random

import numpy as np


def draw():
    a = random.random()
    b = np.random.default_rng().integers(0, 10)
    c = np.random.rand(3)
    return a, b, c
