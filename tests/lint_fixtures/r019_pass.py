"""R019 pass: zero-copy reads — mmap slices, frombuffer, bounded I/O."""

import numpy as np

HEADER_BYTES = 64


def load_index(path):
    with open(path, "rb") as handle:
        header = handle.read(HEADER_BYTES)  # byte-bounded: sanctioned
        footer = handle.read(int(np.frombuffer(header[-8:], dtype="<u8")[0]))
    return header, footer


def decode_record(view, offset, length):
    # slicing a memoryview and viewing it through frombuffer never copies
    record = view[offset:offset + length]
    return np.frombuffer(record, dtype=np.float64)


def widen_indices(record):
    # the codec's documented index widening is an astype on a view, not
    # an asarray copy of an arbitrary object
    return np.frombuffer(record, dtype="<i4").astype(np.int64)
