"""R005 trigger: swallowed exceptions in protocol code."""


def deliver(network, message):
    try:
        network.send(message)
    except:  # noqa: E722 — deliberately bare for the fixture
        return None
    try:
        network.send(message)
    except Exception:
        return None
