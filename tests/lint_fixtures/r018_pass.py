"""R018 pass: every wait goes through the sanctioned deadline helpers."""

from repro.runtime.deadline import join_within, recv_ready, wait_ready


def collect_replies(conns, procs, deadline_s):
    frames = []
    for conn in wait_ready(conns, timeout_s=deadline_s):
        alive, frame = recv_ready(conn)
        if alive:
            frames.append(frame)
    for proc in procs:
        join_within(proc, timeout_s=deadline_s)
    return frames


def poll_bounded(conn):
    # a real timeout keeps the wait bounded, so this is sanctioned
    return conn.poll(0.5)
