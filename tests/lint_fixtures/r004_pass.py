"""R004 pass: tolerance-based comparison; integral sentinels stay legal."""

import math


def classify(loss, label):
    if math.isclose(loss, 0.1, rel_tol=1e-9):
        return "converged"
    if label == -1.0:  # integral floats are exact in IEEE-754
        return "negative"
    if math.isnan(loss):
        return "broken"
    return "running"
