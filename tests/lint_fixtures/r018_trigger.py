"""R018 trigger: unbounded blocking waits in runtime transport code."""

from multiprocessing import connection


def collect_replies(conns, procs):
    ready = connection.wait(conns)  # no timeout: blocks forever
    frames = [conn.recv() for conn in ready]
    straggler = conns[0]
    if straggler.poll():
        frames.append(straggler.recv())
    for proc in procs:
        proc.join()
    return frames


def drain(conn):
    while conn.poll(timeout=None):
        conn.recv_bytes()
