"""R002 pass: Message sizes computed via the serialization helpers."""

from repro.net.message import Message, MessageKind
from repro.storage.serialization import dense_vector_bytes, sparse_vector_bytes


def ship(network, n_elements, nnz):
    size = dense_vector_bytes(n_elements)
    network.send(Message(MessageKind.WORKSET, 0, 1, size))
    network.send(
        Message(MessageKind.CONTROL, 0, 1, size_bytes=sparse_vector_bytes(nnz))
    )
