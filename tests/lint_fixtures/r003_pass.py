"""R003 pass: durations come from the cost model and advance the SimClock."""


def measure(cluster, message):
    seconds = cluster.network.send(message)
    cluster.clock.advance(seconds)
    return seconds
