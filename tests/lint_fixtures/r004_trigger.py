"""R004 trigger: exact equality against inexact float literals and NaN."""

import math


def classify(loss, rate):
    if loss == 0.1:
        return "converged"
    if rate != -0.25:
        return "custom"
    if loss == math.nan:
        return "broken"
    return "running"
