"""R006 trigger: public config dataclasses with unvalidated numeric fields."""

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class UnCheckedConfig:
    batch_size: int = 100
    learning_rate: float = 0.1


@dataclass(frozen=True)
class PartlyCheckedSpec:
    batch_size: int = 100
    learning_rate: float = 0.1

    def __post_init__(self):
        check_positive(self.batch_size, "batch_size")
