"""Unit tests for repro.utils (rng, validation, formatting)."""

import numpy as np
import pytest

from repro.utils import (
    ascii_table,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    format_bytes,
    format_duration,
    rng_from_seed,
    spawn_rngs,
)
from repro.utils.rng import iteration_seed


class TestRng:
    def test_same_seed_same_stream(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_spawn_independent_and_stable(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_from_generator_is_deterministic(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(3), 2)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(3), 2)]
        assert a == b

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_iteration_seed_deterministic(self):
        assert iteration_seed(5, 10) == iteration_seed(5, 10)

    def test_iteration_seed_varies_with_iteration(self):
        seeds = {iteration_seed(5, t) for t in range(100)}
        assert len(seeds) == 100

    def test_iteration_seed_varies_with_base(self):
        assert iteration_seed(1, 0) != iteration_seed(2, 0)


class TestValidation:
    def test_check_positive(self):
        check_positive(1, "x")
        check_positive(0.5, "x")
        for bad in (0, -1, float("nan"), float("inf"), "1", True, None):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        check_non_negative(0, "x")
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_in(self):
        check_in("a", ("a", "b"), "mode")
        with pytest.raises(ValueError, match="mode"):
            check_in("c", ("a", "b"), "mode")


class TestFormat:
    def test_format_bytes_ladder(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(3 * 1024 ** 3) == "3.00 GB"

    def test_format_duration_ladder(self):
        assert format_duration(5e-5) == "50 us"
        assert format_duration(0.02) == "20.0 ms"
        assert format_duration(1.5) == "1.50 s"
        assert format_duration(200) == "3m20s"

    def test_format_duration_negative(self):
        assert format_duration(-1.5) == "-1.50 s"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "-+-" in lines[1]

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [["x", "y"]])
