"""Unit tests for repro.linalg.CSRMatrix."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.linalg import CSRMatrix, SparseVector


def sample_matrix():
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 5.0],
        ]
    )
    return CSRMatrix.from_dense(dense), dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        matrix, dense = sample_matrix()
        assert matrix.shape == (3, 4)
        assert matrix.nnz == 5
        assert np.array_equal(matrix.to_dense(), dense)

    def test_from_rows(self):
        rows = [SparseVector([0, 2], [1.0, 2.0], 4), SparseVector.empty(4)]
        matrix = CSRMatrix.from_rows(rows)
        assert matrix.shape == (2, 4)
        assert matrix.row(0) == rows[0]
        assert matrix.row(1).nnz == 0

    def test_from_rows_needs_consistent_dims(self):
        with pytest.raises(DimensionMismatchError):
            CSRMatrix.from_rows([SparseVector.empty(4), SparseVector.empty(5)])

    def test_from_rows_empty_needs_ncols(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_rows([])
        assert CSRMatrix.from_rows([], n_cols=3).shape == (0, 3)

    def test_empty(self):
        matrix = CSRMatrix.empty(2, 3)
        assert matrix.shape == (2, 3)
        assert matrix.nnz == 0

    def test_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix([1, 2], [0], [1.0], 3)
        with pytest.raises(ValueError):
            CSRMatrix([0, 2], [0], [1.0], 3)

    def test_non_monotone_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix([0, 2, 1, 3], [0, 1, 0], [1.0, 1.0, 1.0], 3)

    def test_column_out_of_range(self):
        with pytest.raises(ValueError, match="column"):
            CSRMatrix([0, 1], [5], [1.0], 3)


class TestRowAccess:
    def test_row(self):
        matrix, dense = sample_matrix()
        assert np.array_equal(matrix.row(2).to_dense(), dense[2])

    def test_row_out_of_range(self):
        matrix, _ = sample_matrix()
        with pytest.raises(IndexError):
            matrix.row(3)

    def test_row_nnz(self):
        matrix, _ = sample_matrix()
        assert matrix.row_nnz().tolist() == [2, 0, 3]

    def test_iter_rows(self):
        matrix, dense = sample_matrix()
        stacked = np.vstack([r.to_dense() for r in matrix.iter_rows()])
        assert np.array_equal(stacked, dense)

    def test_density(self):
        matrix, _ = sample_matrix()
        assert matrix.density() == pytest.approx(5 / 12)
        assert CSRMatrix.empty(0, 0).density() == 0.0


class TestTakeAndSlice:
    def test_take_rows_with_repetition(self):
        matrix, dense = sample_matrix()
        taken = matrix.take_rows([2, 0, 2])
        assert np.array_equal(taken.to_dense(), dense[[2, 0, 2]])

    def test_take_rows_bounds(self):
        matrix, _ = sample_matrix()
        with pytest.raises(IndexError):
            matrix.take_rows([3])

    def test_take_rows_empty(self):
        matrix, _ = sample_matrix()
        assert matrix.take_rows([]).shape == (0, 4)

    def test_slice_rows(self):
        matrix, dense = sample_matrix()
        assert np.array_equal(matrix.slice_rows(1, 3).to_dense(), dense[1:3])

    def test_slice_rows_bounds(self):
        matrix, _ = sample_matrix()
        with pytest.raises(IndexError):
            matrix.slice_rows(1, 4)

    def test_vstack(self):
        matrix, dense = sample_matrix()
        stacked = CSRMatrix.vstack([matrix, matrix])
        assert np.array_equal(stacked.to_dense(), np.vstack([dense, dense]))

    def test_vstack_rejects_mixed_cols(self):
        with pytest.raises(DimensionMismatchError):
            CSRMatrix.vstack([CSRMatrix.empty(1, 2), CSRMatrix.empty(1, 3)])

    def test_vstack_needs_input(self):
        with pytest.raises(ValueError):
            CSRMatrix.vstack([])


class TestColumnOps:
    def test_select_columns(self):
        matrix, dense = sample_matrix()
        sub = matrix.select_columns([0, 3])
        assert sub.shape == (3, 2)
        assert np.array_equal(sub.to_dense(), dense[:, [0, 3]])

    def test_select_columns_empty(self):
        matrix, _ = sample_matrix()
        sub = matrix.select_columns(np.array([], dtype=int))
        assert sub.shape == (3, 0)

    def test_select_columns_requires_sorted_unique(self):
        matrix, _ = sample_matrix()
        with pytest.raises(ValueError):
            matrix.select_columns([3, 0])
        with pytest.raises(ValueError):
            matrix.select_columns([1, 1])

    def test_partition_roundtrip(self):
        matrix, dense = sample_matrix()
        assignments = [np.array([0, 2]), np.array([1, 3])]
        parts = [matrix.select_columns(a) for a in assignments]
        rebuilt = matrix.hstack_from_partitions(parts, assignments, 4)
        assert np.array_equal(rebuilt.to_dense(), dense)

    def test_partition_roundtrip_row_mismatch(self):
        matrix, _ = sample_matrix()
        with pytest.raises(DimensionMismatchError):
            matrix.hstack_from_partitions(
                [CSRMatrix.empty(1, 2)], [np.array([0, 1])], 4
            )


class TestDunder:
    def test_equality(self):
        a, _ = sample_matrix()
        b, _ = sample_matrix()
        assert a == b
        assert a != CSRMatrix.empty(3, 4)

    def test_unhashable(self):
        matrix, _ = sample_matrix()
        with pytest.raises(TypeError):
            hash(matrix)

    def test_repr(self):
        matrix, _ = sample_matrix()
        assert "shape=(3, 4)" in repr(matrix)
