"""Unit tests for repro.storage: serialization sizes, blocks, HDFS."""

import pytest

from repro.datasets import make_classification
from repro.errors import DataError
from repro.storage import (
    OBJECT_OVERHEAD_BYTES,
    Block,
    BlockQueue,
    SimulatedHDFS,
    csr_matrix_bytes,
    dense_vector_bytes,
    sparse_row_bytes,
    sparse_vector_bytes,
    workset_bytes,
)
from repro.storage.blocks import split_into_blocks


class TestSerialization:
    def test_sparse_row_scaling(self):
        assert sparse_row_bytes(10) - sparse_row_bytes(0) == 10 * 12

    def test_object_overhead_charged_once(self):
        assert sparse_vector_bytes(0) == OBJECT_OVERHEAD_BYTES

    def test_dense_vector(self):
        assert dense_vector_bytes(100) == OBJECT_OVERHEAD_BYTES + 800

    def test_csr_beats_per_row_objects(self):
        """CSR batching amortises the per-object overhead — the Fig 7 story."""
        n_rows, nnz = 1000, 20_000
        per_row = n_rows * sparse_row_bytes(nnz // n_rows)
        blocked = csr_matrix_bytes(n_rows, nnz, with_labels=True)
        assert blocked < per_row

    def test_workset_includes_block_id(self):
        assert workset_bytes(10, 50) == 8 + csr_matrix_bytes(10, 50, with_labels=True)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sparse_row_bytes(-1)


class TestBlocks:
    def test_split_exact(self):
        blocks = split_into_blocks(100, 25)
        assert len(blocks) == 4
        assert all(b.n_rows == 25 for b in blocks)

    def test_split_remainder(self):
        blocks = split_into_blocks(10, 4)
        assert [b.n_rows for b in blocks] == [4, 4, 2]

    def test_split_empty(self):
        assert split_into_blocks(0, 4) == []

    def test_block_ids_dense(self):
        blocks = split_into_blocks(10, 3)
        assert [b.block_id for b in blocks] == [0, 1, 2, 3]

    def test_materialize(self):
        data = make_classification(20, 10, seed=1)
        block = Block(0, 5, 10)
        rows = block.materialize(data)
        assert rows.n_rows == 5

    def test_queue_round_robin(self):
        queue = BlockQueue(split_into_blocks(10, 3))
        ids = []
        while True:
            block = queue.next_for(len(ids) % 2)
            if block is None:
                break
            ids.append(block.block_id)
        assert ids == [0, 1, 2, 3]
        assert queue.assignee(0) == 0
        assert queue.assignee(1) == 1
        assert len(queue.assignments()) == 4

    def test_queue_rejects_sparse_ids(self):
        with pytest.raises(DataError):
            BlockQueue([Block(1, 0, 5)])


class TestSimulatedHDFS:
    @pytest.fixture
    def hdfs(self):
        data = make_classification(100, 50, seed=3)
        return SimulatedHDFS(data, block_size=16, n_locations=4, read_bandwidth=1e6)

    def test_block_count(self, hdfs):
        assert hdfs.n_blocks == 7

    def test_locations_round_robin(self, hdfs):
        assert hdfs.location(0) == 0
        assert hdfs.location(5) == 1

    def test_read_block(self, hdfs):
        assert hdfs.read_block(0).n_rows == 16
        assert hdfs.read_block(6).n_rows == 100 - 6 * 16

    def test_total_bytes_is_sum(self, hdfs):
        assert hdfs.total_bytes() == sum(
            hdfs.block_bytes(i) for i in range(hdfs.n_blocks)
        )

    def test_read_time_proportional_to_bytes(self, hdfs):
        assert hdfs.read_time(0) == pytest.approx(hdfs.block_bytes(0) / 1e6)

    def test_scan_time_parallel_speedup(self):
        data = make_classification(200, 50, seed=3)
        slow = SimulatedHDFS(data, block_size=10, n_locations=1, read_bandwidth=1e6)
        fast = SimulatedHDFS(data, block_size=10, n_locations=4, read_bandwidth=1e6)
        assert fast.scan_time() < slow.scan_time()

    def test_scan_time_capped_by_parallelism(self, hdfs):
        assert hdfs.scan_time(parallelism=1) >= hdfs.scan_time(parallelism=4)

    def test_scan_rejects_zero_parallelism(self, hdfs):
        with pytest.raises(ValueError):
            hdfs.scan_time(parallelism=0)

    def test_bad_block_id(self, hdfs):
        with pytest.raises(DataError):
            hdfs.block(99)


class TestBlockStoredBytes:
    """Block.stored_bytes answers from indptr arithmetic, not row copies."""

    def test_matches_materialized_rows(self):
        data = make_classification(60, 20, seed=7)
        for block in split_into_blocks(data.n_rows, 13):
            rows = block.materialize(data)
            expected = csr_matrix_bytes(rows.n_rows, rows.nnz, with_labels=True)
            assert block.stored_bytes(data) == expected

    def test_empty_tail_rows(self):
        # rows past the last non-zero have equal indptr entries; the
        # difference is 0 nnz and the size is header + labels only
        data = make_classification(10, 8, seed=9)
        block = Block(0, data.n_rows, data.n_rows)
        assert block.stored_bytes(data) == csr_matrix_bytes(0, 0, with_labels=True)

    def test_no_row_materialization(self, monkeypatch):
        data = make_classification(30, 12, seed=11)
        block = Block(0, 0, 30)

        def boom(*args, **kwargs):
            raise AssertionError("stored_bytes materialized rows")

        monkeypatch.setattr(Block, "materialize", boom)
        assert block.stored_bytes(data) == csr_matrix_bytes(
            30, data.nnz, with_labels=True
        )
