"""Tests for repro.store: the on-disk column-shard store.

Covers the file format's byte-model invariants, the out-of-core shuffle
writer, the mmap readers and budgeted block cache, the footer-driven
load-cost model, and — the acceptance test — a full out-of-core
ColumnSGD run on ``backend='local'`` whose final model is *exactly*
the in-memory simulator's, with cache counters that reconcile against
the byte ledger.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import make_classification
from repro.datasets.libsvm import write_libsvm
from repro.errors import ConfigurationError, DataError, PartitionError
from repro.models import make_model
from repro.optim import make_optimizer
from repro.partition.column import make_assignment
from repro.partition.dispatch import dispatch_block_based
from repro.sim.cluster import SimulatedCluster
from repro.sim.presets import CLUSTER1
from repro.storage.serialization import csr_matrix_bytes, workset_bytes
from repro.store import (
    STORE_LEDGER,
    ColumnShardStore,
    LRUBlockCache,
    MemoryMeter,
    ShardIndex,
    ShardReader,
    ShardWorksetStore,
    ShuffleWriter,
    StoreHeader,
    shard_filename,
    store_backed_dispatch,
)
from repro.store.format import HEADER_BYTES, KIND_SHARD, SIDECAR_FILENAME

WORKERS = 4
BLOCK = 64


@pytest.fixture(autouse=True)
def _reset_ledger():
    STORE_LEDGER.reset()
    yield
    STORE_LEDGER.reset()


@pytest.fixture
def data():
    return make_classification(500, 80, nnz_per_row=6, seed=3)


@pytest.fixture
def store(data, tmp_path):
    return ColumnShardStore.from_dataset(
        data, tmp_path / "store", n_workers=WORKERS, block_size=BLOCK
    )


def cluster():
    return SimulatedCluster(CLUSTER1.with_workers(WORKERS))


# ----------------------------------------------------------------------
# format: headers, footers, and size validation
# ----------------------------------------------------------------------
class TestFormat:
    def test_header_round_trip(self):
        header = StoreHeader(
            kind=KIND_SHARD, worker_id=3, n_blocks=7,
            footer_offset=4096, footer_length=288, data_bytes=4032,
        )
        packed = header.pack()
        assert len(packed) == HEADER_BYTES
        assert StoreHeader.unpack(packed) == header

    def test_bad_magic_rejected(self):
        packed = bytearray(
            StoreHeader(KIND_SHARD, 0, 1, 100, 50, 36).pack()
        )
        packed[0] = 0
        with pytest.raises(DataError, match="magic"):
            StoreHeader.unpack(bytes(packed))

    def test_store_files_validate(self, store):
        # every published file re-validates against the byte model on open
        for w in range(WORKERS):
            ShardIndex.load(store.store_dir / shard_filename(w))
        ShardIndex.load(store.store_dir / SIDECAR_FILENAME)

    def test_truncated_file_rejected(self, store, tmp_path):
        path = store.store_dir / shard_filename(0)
        clipped = tmp_path / "clipped.col"
        clipped.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(DataError):
            ShardIndex.load(clipped)

    def test_no_tmp_files_left(self, store):
        assert not list(store.store_dir.glob("*.tmp"))


# ----------------------------------------------------------------------
# writer: streaming shuffle under a meter
# ----------------------------------------------------------------------
class TestShuffleWriter:
    def test_record_lengths_equal_byte_model(self, store):
        # writer already asserts this internally; verify from the footers
        for w in range(WORKERS):
            index = store.shard_indexes[w]
            for b in range(index.n_blocks):
                expected = csr_matrix_bytes(
                    index.n_rows(b), index.nnz(b), with_labels=False
                )
                assert index.length(b) == expected

    def test_block_layout_matches_dispatcher(self, data, store):
        sizes = store.block_sizes()
        assert sorted(sizes) == list(range(len(sizes)))
        assert all(v == BLOCK for v in list(sizes.values())[:-1])
        assert sum(sizes.values()) == data.n_rows

    def test_meter_balance_and_peak(self, data, tmp_path):
        writer = ShuffleWriter(
            tmp_path / "s", n_features=data.n_features, n_workers=WORKERS,
            block_size=BLOCK,
        )
        for i in range(data.n_rows):
            row = data.features.row(i)
            writer.add_row(data.labels[i], row.indices, row.values)
        writer.close()
        assert writer.meter.current == 0  # all charges released
        assert writer.meter.peak > 0

    def test_meter_rejects_over_release(self):
        meter = MemoryMeter()
        meter.charge(10)
        with pytest.raises(DataError):
            meter.release(11)

    def test_closed_writer_rejects_rows(self, tmp_path):
        writer = ShuffleWriter(tmp_path / "s", n_features=4, n_workers=2)
        writer.close()
        with pytest.raises(DataError, match="closed"):
            writer.add_row(1.0, np.array([0]), np.array([1.0]))


# ----------------------------------------------------------------------
# readers: zero-copy records, lazy stores, caching
# ----------------------------------------------------------------------
class TestReaders:
    def test_record_is_zero_copy_view(self, store):
        reader = ShardReader(store.shard_indexes[0])
        record = reader.record(0)
        assert isinstance(record, memoryview)
        assert len(record) == store.shard_indexes[0].length(0)
        record.release()  # views pin the mapping; drop before close
        reader.close()

    def test_worksets_identical_to_dispatcher(self, data, store):
        assignment = make_assignment("round_robin", data.n_features, WORKERS)
        mem_stores, _, _ = dispatch_block_based(
            data, assignment, cluster(), block_size=BLOCK
        )
        for w in range(WORKERS):
            ws = store.worker_store(w)
            mem = mem_stores[w]
            assert ws.block_sizes() == mem.block_sizes()
            assert ws.stored_bytes() == mem.stored_bytes()
            for b in ws.block_ids():
                ours, theirs = ws.get(b), mem.get(b)
                np.testing.assert_array_equal(
                    ours.features.indptr, theirs.features.indptr
                )
                np.testing.assert_array_equal(
                    ours.features.indices, theirs.features.indices
                )
                np.testing.assert_array_equal(
                    ours.features.data, theirs.features.data
                )
                np.testing.assert_array_equal(ours.labels, theirs.labels)
            ws.clear()

    def test_store_is_read_only(self, store):
        ws = store.worker_store(0)
        with pytest.raises(PartitionError):
            ws.put(ws.get(0))
        ws.clear()

    def test_out_of_range_block(self, store):
        ws = store.worker_store(0)
        with pytest.raises(PartitionError):
            ws.get(999)

    def test_counters_and_ledger_reconcile(self, store):
        ws = store.worker_store(2)
        for b in ws.block_ids():
            ws.get(b)
        for b in ws.block_ids():
            ws.get(b)  # second pass: all hits
        stats = ws.cache_stats()
        n = store.manifest.n_blocks
        assert stats["misses"] == n and stats["hits"] == n
        expected = sum(
            store.shard_indexes[2].length(b) + store.sidecar_index.length(b)
            for b in range(n)
        )
        assert stats["bytes_read"] == expected
        assert STORE_LEDGER.by_worker[2] == expected
        assert STORE_LEDGER.blocks_read == n
        ws.clear()

    def test_budget_evicts_lru(self, store):
        weights = [
            workset_bytes(
                store.sidecar_index.n_rows(b), store.shard_indexes[0].nnz(b)
            )
            for b in range(store.manifest.n_blocks)
        ]
        budget = 2 * max(weights)
        ws = store.worker_store(0, cache_budget_bytes=budget)
        for b in ws.block_ids():
            ws.get(b)
        stats = ws.cache_stats()
        assert stats["evictions"] > 0
        assert stats["bytes_evicted"] > 0
        # over-budget only by the MRU entry that must stay resident
        assert stats["resident_bytes"] <= budget + max(weights)
        ws.clear()

    def test_pickle_drops_file_state(self, store):
        ws = store.worker_store(1, cache_budget_bytes=4096)
        ws.get(0)
        clone = pickle.loads(pickle.dumps(ws))
        assert clone.cache_stats()["hits"] == 0  # fresh cache
        got = clone.get(0)
        np.testing.assert_array_equal(got.labels, ws.get(0).labels)
        ws.clear()
        clone.clear()

    def test_kind_mismatch_rejected(self, store):
        with pytest.raises(DataError, match="shard"):
            ShardWorksetStore(0, 10, store.sidecar_index, store.sidecar_index)
        with pytest.raises(DataError, match="sidecar"):
            ShardWorksetStore(
                0, 10, store.shard_indexes[0], store.shard_indexes[0]
            )


class TestLRUBlockCache:
    def test_hit_miss_counters(self):
        cache = LRUBlockCache()
        assert cache.get(0) is None
        cache.put(0, "x", weight=10)
        assert cache.get(0) == "x"
        assert cache.counters.misses == 1 and cache.counters.hits == 1

    def test_eviction_order_is_lru(self):
        cache = LRUBlockCache(budget_bytes=25)
        cache.put(0, "a", weight=10)
        cache.put(1, "b", weight=10)
        cache.get(0)  # refresh 0; 1 becomes LRU
        cache.put(2, "c", weight=10)
        assert 1 not in cache and 0 in cache and 2 in cache

    def test_mru_survives_even_over_budget(self):
        cache = LRUBlockCache(budget_bytes=5)
        cache.put(0, "big", weight=50)
        assert 0 in cache  # never evict the block being read

    def test_zero_budget_never_evicts(self):
        cache = LRUBlockCache(budget_bytes=0)
        for i in range(100):
            cache.put(i, i, weight=1000)
        assert len(cache) == 100
        assert cache.counters.evictions == 0


# ----------------------------------------------------------------------
# the facade: manifest validation, libsvm ingestion, reassembly
# ----------------------------------------------------------------------
class TestColumnShardStore:
    def test_exists_and_open(self, store):
        assert ColumnShardStore.exists(store.store_dir)
        reopened = ColumnShardStore.open(store.store_dir)
        assert reopened.manifest == store.manifest

    def test_open_missing_dir(self, tmp_path):
        assert not ColumnShardStore.exists(tmp_path / "nothing")
        with pytest.raises(DataError, match="manifest"):
            ColumnShardStore.open(tmp_path / "nothing")

    def test_materialize_round_trip(self, data, store):
        back = store.materialize_dataset()
        assert back.features == data.features
        np.testing.assert_array_equal(back.labels, data.labels)

    def test_from_libsvm_matches_from_dataset(self, data, tmp_path):
        path = str(tmp_path / "data.libsvm")
        write_libsvm(data, path)
        store = ColumnShardStore.from_libsvm(
            path, tmp_path / "s", n_workers=WORKERS, block_size=BLOCK
        )
        back = store.materialize_dataset()
        assert back.features == data.features

    def test_from_gzipped_libsvm(self, data, tmp_path):
        path = str(tmp_path / "data.libsvm.gz")
        write_libsvm(data, path)
        store = ColumnShardStore.from_libsvm(
            path, tmp_path / "s", n_workers=WORKERS, block_size=BLOCK
        )
        assert store.manifest.n_rows == data.n_rows
        assert store.manifest.nnz == data.nnz

    def test_reuse_validates_worker_count(self, data, store):
        bad = SimulatedCluster(CLUSTER1.with_workers(WORKERS + 1))
        with pytest.raises(ConfigurationError, match="worker"):
            store_backed_dispatch(
                data, bad, store.store_dir, block_size=BLOCK
            )

    def test_reuse_validates_block_size(self, data, store):
        with pytest.raises(ConfigurationError, match="block_size"):
            store_backed_dispatch(
                data, cluster(), store.store_dir, block_size=BLOCK * 2
            )

    def test_reuse_validates_shape(self, store):
        other = make_classification(500, 80, nnz_per_row=7, seed=4)
        with pytest.raises(ConfigurationError, match="does not match"):
            store_backed_dispatch(
                other, cluster(), store.store_dir, block_size=BLOCK
            )

    def test_dispatch_without_store_or_dataset(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no dataset"):
            store_backed_dispatch(
                None, cluster(), tmp_path / "missing", block_size=BLOCK
            )

    def test_load_cost_identical_to_dispatcher(self, data, store):
        assignment = make_assignment("round_robin", data.n_features, WORKERS)
        c_mem, c_store = cluster(), cluster()
        _, _, mem_report = dispatch_block_based(
            data, assignment, c_mem, block_size=BLOCK
        )
        store_report = store.store_model().charge_load(c_store)
        assert store_report.seconds == mem_report.seconds
        assert store_report.bytes_shuffled == mem_report.bytes_shuffled
        assert store_report.phase_seconds == mem_report.phase_seconds
        assert store_report.n_objects_shipped == mem_report.n_objects_shipped
        assert c_store.clock.now() == c_mem.clock.now()
        assert c_store.network.bytes_by_kind == c_mem.network.bytes_by_kind


# ----------------------------------------------------------------------
# driver integration (sim backend)
# ----------------------------------------------------------------------
def _driver(backend="sim", store_dir="", budget=0, **kw):
    cfg = ColumnSGDConfig(
        batch_size=100, iterations=10, eval_every=5, seed=5, block_size=128,
        backend=backend,
        local_processes=2 if backend == "local" else 0,
        store_dir=str(store_dir) if store_dir else "",
        memory_budget_bytes=budget,
        **kw,
    )
    return ColumnSGDDriver(
        make_model("lr"), make_optimizer("sgd", 0.1), cluster(), config=cfg
    )


class TestDriverIntegration:
    def test_config_rejects_naive_loader_with_store(self):
        with pytest.raises(ValueError, match="loader"):
            ColumnSGDConfig(store_dir="/tmp/x", loader="naive")

    def test_config_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            ColumnSGDConfig(memory_budget_bytes=-1)

    def test_sim_run_bit_identical(self, tmp_path):
        ds = make_classification(2000, 400, nnz_per_row=10, seed=5)
        d_mem = _driver()
        d_mem.load(ds)
        r_mem = d_mem.fit()
        d_store = _driver(store_dir=tmp_path / "s", budget=128 * 1024)
        d_store.load(ds)
        r_store = d_store.fit()
        assert np.abs(d_mem.current_params() - d_store.current_params()).max() == 0.0
        assert [l for _, _, l in r_mem.losses()] == [
            l for _, _, l in r_store.losses()
        ]
        assert d_mem.load_report.seconds == d_store.load_report.seconds
        assert [rec.sim_time for rec in r_mem.records] == [
            rec.sim_time for rec in r_store.records
        ]

    def test_load_from_store_no_dataset(self, tmp_path):
        ds = make_classification(2000, 400, nnz_per_row=10, seed=5)
        seed_driver = _driver(store_dir=tmp_path / "s")
        seed_driver.load(ds)

        d = _driver(store_dir=tmp_path / "s")
        d.load_from_store()
        r = d.fit()
        assert r.dataset == ds.name
        d_mem = _driver()
        d_mem.load(ds)
        d_mem.fit()
        assert np.abs(d.current_params() - d_mem.current_params()).max() == 0.0
        # eval_every forced lazy reassembly from the shards
        assert [l for _, _, l in r.losses()]


# ----------------------------------------------------------------------
# THE acceptance test: out-of-core training on the local backend
# ----------------------------------------------------------------------
class TestOutOfCoreAcceptance:
    def test_local_out_of_core_run(self, tmp_path):
        ds = make_classification(2000, 400, nnz_per_row=10, seed=5)
        dataset_bytes = csr_matrix_bytes(ds.n_rows, ds.nnz, with_labels=True)
        budget = 128 * 1024
        assert budget < dataset_bytes  # genuinely out-of-core

        # (a) shuffle under the budget: tracked buffer peak stays below it
        writer = ShuffleWriter(
            tmp_path / "s", n_features=ds.n_features, n_workers=WORKERS,
            block_size=128, memory_budget_bytes=budget,
        )
        for i in range(ds.n_rows):
            row = ds.features.row(i)
            writer.add_row(ds.labels[i], row.indices, row.values)
        store = ColumnShardStore.finish(writer)
        assert writer.meter.peak <= budget, (
            "shuffle peak {} exceeded the {} byte budget".format(
                writer.meter.peak, budget
            )
        )
        # budget high enough that no early flush changed the block layout
        assert store.manifest.n_blocks == (ds.n_rows + 127) // 128

        # (b) train out-of-core on real processes; exact same model as
        # the in-memory simulator run
        d_ref = _driver()
        d_ref.load(ds)
        d_ref.fit()
        d_local = _driver("local", store_dir=tmp_path / "s", budget=budget)
        d_local.load(ds)
        d_local.fit()
        diff = np.abs(d_ref.current_params() - d_local.current_params()).max()
        assert diff == 0.0

        # (c) per-partition cache counters, pulled out of the worker
        # processes, reconcile with the shard/sidecar record lengths
        assert sorted(d_local.store_read_stats) == list(range(WORKERS))
        n = store.manifest.n_blocks
        for w, per_pid in d_local.store_read_stats.items():
            for pid, stats in per_pid.items():
                cold = sum(
                    store.shard_indexes[pid].length(b)
                    + store.sidecar_index.length(b)
                    for b in range(n)
                )
                assert stats["misses"] >= 1
                if stats["evictions"] == 0:
                    # every block fetched exactly once -> bytes_read is
                    # the whole shard's record bytes
                    assert stats["misses"] == n
                    assert stats["bytes_read"] == cold
                else:
                    assert stats["bytes_read"] >= cold
                assert stats["hits"] + stats["misses"] >= n

    def test_in_memory_local_run_reports_zero_stats(self):
        ds = make_classification(800, 100, nnz_per_row=6, seed=7)
        d = _driver("local")
        d.load(ds)
        d.fit()
        for per_pid in d.store_read_stats.values():
            for stats in per_pid.values():
                assert stats["misses"] == 0
                assert stats["bytes_read"] == 0
