"""Tests for the iteration Gantt renderer."""

import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.experiments import render_iteration_gantt
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel


def run_one_iteration(data, backup=0, straggler=None):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster,
        config=ColumnSGDConfig(batch_size=64, iterations=1, eval_every=0,
                               block_size=64, backup=backup),
        straggler=straggler,
    )
    driver.load(data)
    driver.run_round(0)
    return driver


class TestGantt:
    def test_one_lane_per_worker(self, tiny_binary):
        driver = run_one_iteration(tiny_binary)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds
        )
        assert chart.count("worker") == 4
        assert "legend" in chart

    def test_straggler_lane_is_longest(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=3)
        driver = run_one_iteration(tiny_binary, straggler=straggler)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds, width=60
        )
        lanes = [l for l in chart.splitlines() if l.startswith("worker")]
        lengths = [l.count("#") for l in lanes]
        assert max(lengths) > 3 * sorted(lengths)[1]

    def test_killed_straggler_annotated(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=3)
        driver = run_one_iteration(tiny_binary, backup=1, straggler=straggler)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds,
            driver.last_killed,
        )
        assert "killed after recovery" in chart

    def test_failed_worker_lane(self):
        chart = render_iteration_gantt(
            {"compute_statistics": {0: 0.01, 1: float("inf")},
             "update_model": {0: 0.01}},
            {"compute_statistics": 0.01, "gather": 0.001, "reduce": 0.0,
             "broadcast": 0.001, "update_model": 0.01},
        )
        assert "(failed)" in chart

    def test_no_live_workers(self):
        chart = render_iteration_gantt(
            {"compute_statistics": {0: float("inf")}, "update_model": {}}, {}
        )
        assert chart == "(no live workers)"

    def test_fits_width(self, tiny_binary):
        driver = run_one_iteration(tiny_binary)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds, width=40
        )
        for line in chart.splitlines():
            if line.startswith("worker") and "killed" not in line:
                assert len(line) <= 40 + 15  # lane + prefix
