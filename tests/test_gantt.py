"""Tests for the iteration Gantt renderer."""

import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.engine import EventQueue
from repro.experiments import render_engine_trace, render_iteration_gantt
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel


def run_one_iteration(data, backup=0, straggler=None):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster,
        config=ColumnSGDConfig(batch_size=64, iterations=1, eval_every=0,
                               block_size=64, backup=backup),
        straggler=straggler,
    )
    driver.load(data)
    driver.run_round(0)
    return driver


class TestGantt:
    def test_one_lane_per_worker(self, tiny_binary):
        driver = run_one_iteration(tiny_binary)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds
        )
        assert chart.count("worker") == 4
        assert "legend" in chart

    def test_straggler_lane_is_longest(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=3)
        driver = run_one_iteration(tiny_binary, straggler=straggler)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds, width=60
        )
        lanes = [l for l in chart.splitlines() if l.startswith("worker")]
        lengths = [l.count("#") for l in lanes]
        assert max(lengths) > 3 * sorted(lengths)[1]

    def test_killed_straggler_annotated(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=3)
        driver = run_one_iteration(tiny_binary, backup=1, straggler=straggler)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds,
            driver.last_killed,
        )
        assert "killed after recovery" in chart

    def test_failed_worker_lane(self):
        chart = render_iteration_gantt(
            {"compute_statistics": {0: 0.01, 1: float("inf")},
             "update_model": {0: 0.01}},
            {"compute_statistics": 0.01, "gather": 0.001, "reduce": 0.0,
             "broadcast": 0.001, "update_model": 0.01},
        )
        assert "(failed)" in chart

    def test_no_live_workers(self):
        chart = render_iteration_gantt(
            {"compute_statistics": {0: float("inf")}, "update_model": {}}, {}
        )
        assert chart == "(no live workers)"

    def test_fits_width(self, tiny_binary):
        driver = run_one_iteration(tiny_binary)
        chart = render_iteration_gantt(
            driver.last_worker_seconds, driver.last_phase_seconds, width=40
        )
        for line in chart.splitlines():
            if line.startswith("worker") and "killed" not in line:
                assert len(line) <= 40 + 15  # lane + prefix


def _bar_columns(art, phase):
    """Occupied column range of one phase's bar in the engine chart."""
    line = next(l for l in art.splitlines() if l.startswith(phase + " "))
    bar = line.split("|")[1]
    filled = [i for i, ch in enumerate(bar) if ch not in " "]
    return filled[0], filled[-1]


class TestEngineTraceOverlap:
    """The docstring's promise: after=() phases render as horizontally
    overlapping bars, and replays produce an identical event order."""

    def test_overlap_bars_do_overlap(self, tiny_binary):
        driver = run_one_iteration(tiny_binary)
        cluster = driver.cluster
        art = render_engine_trace(cluster.engine_trace, round_index=0)
        compute_lo, compute_hi = _bar_columns(art, "compute_statistics")
        prefetch_lo, _ = _bar_columns(art, "prefetch_batch")
        gather_lo, _ = _bar_columns(art, "gather")
        reduce_lo, _ = _bar_columns(art, "reduce")
        # prefetch (after=()) starts at round offset zero, alongside the
        # compute phase that occupies the first columns
        assert prefetch_lo == compute_lo == 0
        # streaming reduce starts with the gather, not after it
        assert reduce_lo == gather_lo
        assert gather_lo <= compute_hi + 1

    def test_sequential_spec_has_no_overlapping_bars(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster,
            config=ColumnSGDConfig(batch_size=64, iterations=1, eval_every=0,
                                   block_size=64, overlap=False),
        )
        driver.load(tiny_binary)
        driver.run_round(0)
        events = cluster.engine_trace.round_events(0)
        for earlier, later in zip(events, events[1:]):
            assert later.start >= earlier.start

    def test_phase_event_order_is_identical_across_replays(self, tiny_binary):
        def replay():
            driver = run_one_iteration(tiny_binary)
            return [
                (e.phase, e.start, e.end)
                for e in driver.cluster.engine_trace.round_events(0)
            ]

        first, second = replay(), replay()
        assert first == second
        # the overlapped phases really share the round's start
        starts = dict((phase, start) for phase, start, _ in first)
        assert starts["prefetch_batch"] == 0.0
        assert starts["compute_statistics"] == 0.0


class TestEventQueueDeterminism:
    def test_ties_pop_in_push_order(self):
        queue = EventQueue()
        queue.push(1.0, "b")
        queue.push(0.0, "a1")
        queue.push(0.0, "a2")
        queue.push(0.0, "a3")
        assert [p for _, p in queue.drain()] == ["a1", "a2", "a3", "b"]

    def test_drain_is_reproducible(self):
        def fill():
            queue = EventQueue()
            for offset, payload in ((2.0, "z"), (0.5, "m"), (0.5, "n"),
                                    (0.0, "a")):
                queue.push(offset, payload)
            return list(queue.drain())

        assert fill() == fill()
