"""Unit tests for the network model and topologies."""

import pytest

from repro.net import Message, MessageKind, NetworkModel, StarTopology, allreduce_time
from repro.net.network import gbps


class TestMessage:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Message(MessageKind.CONTROL, 0, 1, -1)

    def test_involves_master(self):
        assert Message(MessageKind.CONTROL, Message.MASTER, 1, 0).involves_master()
        assert not Message(MessageKind.CONTROL, 0, 1, 0).involves_master()


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(bandwidth=1e6, latency=0.01)
        assert net.transfer_time(5e5) == pytest.approx(0.51)

    def test_gbps_helper(self):
        assert gbps(1.0) == pytest.approx(1.25e8)

    def test_send_accounts_bytes(self):
        net = NetworkModel(bandwidth=1e6, latency=0.0)
        net.send(Message(MessageKind.MODEL_PULL, Message.MASTER, 0, 100))
        net.send(Message(MessageKind.GRADIENT_PUSH, 0, Message.MASTER, 50))
        assert net.total_bytes() == 150
        assert net.total_messages() == 2
        assert net.bytes_of_kind(MessageKind.MODEL_PULL) == 100
        assert net.master_bytes() == 150
        assert net.worker_bytes(0) == 150

    def test_reset_counters(self):
        net = NetworkModel()
        net.send(Message(MessageKind.CONTROL, 0, 1, 10))
        net.reset_counters()
        assert net.total_bytes() == 0

    def test_log_kept_only_when_enabled(self):
        net = NetworkModel(keep_log=True)
        net.send(Message(MessageKind.CONTROL, 0, 1, 10))
        assert len(net.log) == 1
        quiet = NetworkModel()
        quiet.send(Message(MessageKind.CONTROL, 0, 1, 10))
        assert quiet.log == []

    def test_snapshot(self):
        net = NetworkModel()
        net.send(Message(MessageKind.CONTROL, 0, Message.MASTER, 10))
        snap = net.snapshot()
        assert snap["total_bytes"] == 10
        assert snap["master_bytes"] == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)


class TestStarTopology:
    @pytest.fixture
    def star(self):
        return StarTopology(NetworkModel(bandwidth=1e6, latency=0.001), n_workers=4)

    def test_gather_serialises_at_master(self, star):
        t = star.gather(MessageKind.STATISTICS_PUSH, [1000] * 4)
        assert t == pytest.approx(0.001 + 4000 / 1e6)
        assert star.network.total_messages() == 4

    def test_broadcast_through_master_nic(self, star):
        t = star.broadcast(MessageKind.STATISTICS_BCAST, 1000)
        assert t == pytest.approx(0.001 + 4 * 1000 / 1e6)

    def test_sharded_divides_by_servers(self, star):
        full = star.sharded_gather(MessageKind.GRADIENT_PUSH, [1000] * 4, n_servers=1)
        star.network.reset_counters()
        sharded = star.sharded_gather(MessageKind.GRADIENT_PUSH, [1000] * 4, n_servers=4)
        assert sharded < full
        # ... but bytes are identical — the paper's point about PS
        assert star.network.total_bytes() == 4000

    def test_sharded_broadcast(self, star):
        t1 = star.sharded_broadcast(MessageKind.MODEL_PULL, 1000, n_servers=2)
        t2 = 0.001 + 4 * 1000 / (2 * 1e6)
        assert t1 == pytest.approx(t2)


class TestAllReduce:
    def test_single_node_is_free(self):
        assert allreduce_time(NetworkModel(), 1000, 1) == 0.0

    def test_ring_cost_formula(self):
        net = NetworkModel(bandwidth=1e6, latency=0.001)
        t = allreduce_time(net, 8000, 4)
        steps = 2 * 3
        assert t == pytest.approx(steps * 0.001 + steps * 2000 / 1e6)

    def test_bandwidth_term_nearly_size_independent_of_k(self):
        """Ring AllReduce moves ~2*size regardless of K (for K large)."""
        net = NetworkModel(bandwidth=1e6, latency=0.0)
        t4 = allreduce_time(net, 1_000_000, 4)
        t8 = allreduce_time(net, 1_000_000, 8)
        assert t8 / t4 == pytest.approx((2 * 7 / 8) / (2 * 3 / 4), rel=1e-6)
