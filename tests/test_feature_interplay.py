"""Interplay of orthogonal driver features (they must compose)."""

import json

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import DataError
from repro.io import load_model, save_model
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel


def driver_for(data, **config_kwargs):
    defaults = dict(batch_size=32, iterations=10, eval_every=5, seed=21,
                    block_size=64)
    defaults.update(config_kwargs)
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster,
        config=ColumnSGDConfig(**defaults),
    )
    driver.load(data)
    return driver


class TestFeatureInterplay:
    def test_backup_plus_fp32_still_matches_fp32_pure(self, tiny_gaussian):
        """Backup replication must not change the fp32-rounded stream."""
        pure = driver_for(tiny_gaussian, wire_precision="fp32").fit()
        backed = driver_for(tiny_gaussian, wire_precision="fp32", backup=1).fit()
        assert np.allclose(pure.final_params, backed.final_params, atol=1e-9)

    def test_backup_plus_straggler_plus_eval_dataset(self, tiny_gaussian):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster,
            config=ColumnSGDConfig(batch_size=32, iterations=10, eval_every=5,
                                   seed=21, block_size=64, backup=1),
            straggler=StragglerModel(4, level=5.0, seed=2),
        )
        driver.load(tiny_gaussian)
        result = driver.fit(eval_dataset=tiny_gaussian)
        assert len(result.eval_losses()) == len(result.losses())

    def test_warm_start_plus_early_stop(self, small_binary, tmp_path):
        first = driver_for(small_binary, iterations=40, eval_every=5,
                           block_size=256, batch_size=100)
        trained = first.fit()
        save_model(tmp_path / "m.npz", "lr", trained.final_params)
        _, params, _ = load_model(tmp_path / "m.npz")

        resumed = driver_for(small_binary, iterations=200, eval_every=5,
                             block_size=256, batch_size=100,
                             early_stop_patience=3,
                             early_stop_min_improvement=0.05)
        resumed.set_params(params)
        result = resumed.fit()
        # warm-started near convergence, the 5%-improvement bar trips fast
        assert result.n_iterations < 200

    def test_csv_roundtrip_preserves_eval_losses(self, tiny_gaussian, tmp_path):
        from repro.core import TrainingResult

        driver = driver_for(tiny_gaussian)
        result = driver.fit(eval_dataset=tiny_gaussian)
        result.to_csv(tmp_path / "t.csv")
        loaded = TrainingResult.from_csv(tmp_path / "t.csv")
        assert [round(l, 9) for _, _, l in loaded.eval_losses()] == [
            round(l, 9) for _, _, l in result.eval_losses()
        ]


class TestCheckpointEdges:
    def test_future_format_version_rejected(self, tmp_path):
        record = {"format_version": 99, "model_name": "lr", "shape": [2]}
        np.savez(
            str(tmp_path / "future.npz"),
            params=np.zeros(2),
            metadata=np.frombuffer(json.dumps(record).encode(), dtype=np.uint8),
        )
        with pytest.raises(DataError, match="version"):
            load_model(tmp_path / "future.npz")

    def test_shape_mismatch_rejected(self, tmp_path):
        record = {"format_version": 1, "model_name": "lr", "shape": [3]}
        np.savez(
            str(tmp_path / "bad.npz"),
            params=np.zeros(2),
            metadata=np.frombuffer(json.dumps(record).encode(), dtype=np.uint8),
        )
        with pytest.raises(DataError, match="shape"):
            load_model(tmp_path / "bad.npz")
