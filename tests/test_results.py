"""Unit tests for IterationRecord / TrainingResult."""

import numpy as np
import pytest

from repro.core.results import IterationRecord, TrainingResult


def make_result(durations, losses):
    result = TrainingResult(system="X", model="lr", dataset="d",
                            batch_size=10, n_workers=2)
    t = 0.0
    for i, (duration, loss) in enumerate(zip(durations, losses)):
        t += duration
        result.add(IterationRecord(i, t, duration, loss, bytes_sent=7))
    return result


class TestTrainingResult:
    def test_add_tracks_total_time(self):
        result = make_result([0.1, 0.2], [0.5, 0.4])
        assert result.total_sim_time == pytest.approx(0.3)
        assert result.n_iterations == 2

    def test_losses_skips_unevaluated(self):
        result = make_result([0.1, 0.1, 0.1], [0.5, None, 0.3])
        assert [loss for _, _, loss in result.losses()] == [0.5, 0.3]

    def test_final_loss(self):
        assert make_result([0.1], [0.9]).final_loss() == 0.9
        assert make_result([0.1], [None]).final_loss() is None

    def test_avg_iteration_skips_warmup(self):
        result = make_result([10.0, 0.1, 0.1], [None, None, None])
        assert result.avg_iteration_seconds(skip_first=1) == pytest.approx(0.1)

    def test_avg_iteration_falls_back_when_too_short(self):
        result = make_result([0.4], [None])
        assert result.avg_iteration_seconds(skip_first=1) == pytest.approx(0.4)

    def test_avg_iteration_empty(self):
        result = TrainingResult(system="X", model="lr", dataset="d",
                                batch_size=1, n_workers=1)
        assert result.avg_iteration_seconds() == 0.0

    def test_time_to_loss(self):
        result = make_result([1.0, 1.0, 1.0], [0.9, 0.5, 0.2])
        assert result.time_to_loss(0.6) == pytest.approx(2.0)
        assert result.time_to_loss(0.95) == pytest.approx(1.0)
        assert result.time_to_loss(0.1) is None

    def test_total_bytes(self):
        assert make_result([0.1, 0.1], [None, None]).total_bytes() == 14

    def test_describe_handles_missing_loss(self):
        result = make_result([0.1], [None])
        assert "n/a" in result.describe()

    def test_final_params_roundtrip(self):
        result = make_result([0.1], [0.5])
        result.final_params = np.arange(3.0)
        assert result.final_params.tolist() == [0.0, 1.0, 2.0]
