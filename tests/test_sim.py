"""Unit tests for the cluster simulator: clock, cost, stragglers, failures,
cluster specs and memory ledger."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.sim import (
    CLUSTER1,
    CLUSTER2,
    ChaosSchedule,
    ClusterSpec,
    ComputeCostModel,
    FailureEvent,
    FailureInjector,
    FailureKind,
    SimClock,
    SimulatedCluster,
    StragglerModel,
)


class TestClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock(5.0)
        clock.advance(1.0)
        clock.reset()
        assert clock.now() == 0.0


class TestCostModel:
    def test_sparse_work_linear(self):
        cost = ComputeCostModel(seconds_per_nnz=1e-9)
        assert cost.sparse_work(1000) == pytest.approx(1e-6)
        assert cost.sparse_work(1000, passes=3) == pytest.approx(3e-6)

    def test_dense_work(self):
        cost = ComputeCostModel(seconds_per_dense_element=2e-9)
        assert cost.dense_work(500) == pytest.approx(1e-6)

    def test_with_overhead(self):
        cost = ComputeCostModel().with_overhead(0.1)
        assert cost.task_overhead == 0.1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ComputeCostModel(seconds_per_nnz=-1)
        with pytest.raises(ValueError):
            ComputeCostModel().sparse_work(-5)


class TestStraggler:
    def test_none_mode(self):
        model = StragglerModel.none(4)
        assert model.victims(0) == frozenset()
        assert all(v == 1.0 for v in model.slowdowns(0).values())

    def test_random_mode_picks_one(self):
        model = StragglerModel(8, level=5.0, seed=1)
        for t in range(10):
            victims = model.victims(t)
            assert len(victims) == 1
            assert all(0 <= w < 8 for w in victims)

    def test_random_victims_vary(self):
        model = StragglerModel(8, level=1.0, seed=2)
        seen = {next(iter(model.victims(t))) for t in range(50)}
        assert len(seen) > 3

    def test_slowdown_factor(self):
        model = StragglerModel(4, level=5.0, seed=3)
        slow = model.slowdowns(0)
        victim = next(iter(model.victims(0)))  # fresh draw differs; check values
        assert sorted(slow.values()) == [1.0, 1.0, 1.0, 6.0]
        assert victim in range(4)

    def test_permanent_mode_fixed(self):
        model = StragglerModel(6, level=2.0, mode="permanent", seed=4)
        assert model.victims(0) == model.victims(99)
        assert model.permanent_victims() == model.victims(0)

    def test_multiple_stragglers(self):
        model = StragglerModel(8, level=1.0, n_stragglers=3, seed=5)
        assert len(model.victims(0)) == 3

    def test_too_many_stragglers(self):
        with pytest.raises(ValueError):
            StragglerModel(2, level=1.0, n_stragglers=3)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            StragglerModel(4, mode="sometimes")

    def test_victims_memoized_per_iteration(self):
        """Regression: repeated victims(t) calls must agree — the random
        mode used to redraw on every call, so two consumers of the same
        iteration (slowdowns, the engine, a gantt) could disagree."""
        model = StragglerModel(8, level=5.0, seed=6)
        for t in range(20):
            assert model.victims(t) == model.victims(t)

    def test_slowdowns_consistent_with_victims(self):
        model = StragglerModel(8, level=5.0, seed=7)
        for t in range(10):
            victims = model.victims(t)
            slow = model.slowdowns(t)
            assert {w for w, s in slow.items() if s > 1.0} == set(victims)


class TestFailures:
    def test_none(self):
        injector = FailureInjector.none()
        assert not injector.any_scheduled()
        assert injector.events_at(0) == []

    def test_task_failure_factory(self):
        injector = FailureInjector.task_failure(5, worker_id=2)
        events = injector.events_at(5)
        assert len(events) == 1
        assert events[0].kind == FailureKind.TASK
        assert events[0].worker_id == 2

    def test_worker_failure_factory(self):
        injector = FailureInjector.worker_failure(3)
        assert injector.events_at(3)[0].kind == FailureKind.WORKER

    def test_multiple_events_same_iteration(self):
        injector = FailureInjector(
            [
                FailureEvent(1, FailureKind.TASK, 0),
                FailureEvent(1, FailureKind.WORKER, 1),
            ]
        )
        assert len(injector.events_at(1)) == 2

    def test_event_requires_worker_id(self):
        with pytest.raises(ValueError):
            FailureEvent(0, FailureKind.WORKER)
        FailureEvent(0, FailureKind.MASTER)  # fine without worker

    def test_event_rejects_negative_worker(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(0, FailureKind.WORKER, worker_id=-1)

    def test_default_constructor_is_empty(self):
        assert not FailureInjector().any_scheduled()

    def test_schedule_is_defensively_copied(self):
        events = [FailureEvent(1, FailureKind.TASK, 0)]
        injector = FailureInjector(events)
        events.append(FailureEvent(2, FailureKind.TASK, 0))
        assert len(injector.events) == 1
        assert isinstance(injector.events, tuple)

    def test_rejects_non_event_entries(self):
        with pytest.raises(ConfigurationError):
            FailureInjector([(1, "worker")])

    def test_validate_checks_worker_range(self):
        injector = FailureInjector.worker_failure(3, worker_id=7)
        injector.validate(8)  # in range
        with pytest.raises(ConfigurationError):
            injector.validate(4)

    def test_master_failure_factory(self):
        event = FailureInjector.master_failure(5).events_at(5)[0]
        assert event.kind == FailureKind.MASTER
        assert event.worker_id is None


class TestChaosSchedule:
    def test_requires_attach(self):
        chaos = ChaosSchedule(mtbf_s=1.0, seed=1)
        with pytest.raises(ConfigurationError):
            chaos.events_at(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule(mtbf_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosSchedule(mtbf_s=1.0, kinds=())
        with pytest.raises(ConfigurationError):
            ChaosSchedule(mtbf_s=1.0, kinds=("worker",))

    def _drive(self, seed, mtbf_s=0.5):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        chaos = ChaosSchedule(mtbf_s=mtbf_s, seed=seed)
        chaos.attach(cluster)
        events = []
        for t in range(20):
            cluster.clock.advance(0.2)
            events.extend(
                (t, e.kind, e.worker_id) for e in chaos.events_at(t)
            )
        return events

    def test_deterministic_given_seed(self):
        assert self._drive(seed=3) == self._drive(seed=3)

    def test_seeds_differ(self):
        assert self._drive(seed=3) != self._drive(seed=4)

    def test_poisson_rate_roughly_matches_mtbf(self):
        # 4 sim-seconds at MTBF 0.5 -> ~8 arrivals
        events = self._drive(seed=5)
        assert 2 <= len(events) <= 20

    def test_overlays_base_schedule(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        chaos = ChaosSchedule(
            mtbf_s=100.0, seed=1, base=FailureInjector.task_failure(2, worker_id=1)
        )
        chaos.attach(cluster)
        assert any(
            e.kind == FailureKind.TASK for e in chaos.events_at(2)
        )

    def test_any_scheduled_always_true(self):
        assert ChaosSchedule(mtbf_s=1.0).any_scheduled()


class TestClusterSpec:
    def test_paper_clusters(self):
        assert CLUSTER1.n_workers == 8
        assert CLUSTER1.memory_bytes_per_node == 32e9
        assert CLUSTER2.n_workers == 40
        assert CLUSTER2.bandwidth_bytes_per_s == pytest.approx(10e9 / 8)

    def test_with_workers(self):
        spec = CLUSTER1.with_workers(3)
        assert spec.n_workers == 3
        assert spec.memory_bytes_per_node == CLUSTER1.memory_bytes_per_node

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", 0, 1, 1e9, 1e9)


class TestSimulatedCluster:
    def test_memory_ledger(self, cluster4):
        cluster4.charge_memory(0, 1e9)
        cluster4.charge_memory(0, 2e9)
        assert cluster4.memory_in_use(0) == pytest.approx(3e9)
        cluster4.release_memory(0, 1e9)
        assert cluster4.memory_in_use(0) == pytest.approx(2e9)
        assert cluster4.memory_peak(0) == pytest.approx(3e9)

    def test_oom_raises(self, cluster4):
        with pytest.raises(OutOfMemoryError) as err:
            cluster4.charge_memory(1, 33e9, "model")
        assert "worker 1" in str(err.value)

    def test_master_ledger(self, cluster4):
        cluster4.charge_memory(cluster4.MASTER, 1e9)
        assert cluster4.memory_in_use(cluster4.MASTER) == pytest.approx(1e9)

    def test_unknown_node(self, cluster4):
        with pytest.raises(ValueError):
            cluster4.charge_memory(99, 1)

    def test_release_floors_at_zero(self, cluster4):
        cluster4.charge_memory(0, 10)
        cluster4.release_memory(0, 100)
        assert cluster4.memory_in_use(0) == 0.0

    def test_bsp_compute_is_slowest_plus_overhead(self, cluster4):
        t = cluster4.bsp_compute({0: 0.1, 1: 0.4, 2: 0.2, 3: 0.0})
        assert t == pytest.approx(cluster4.cost.task_overhead + 0.4)

    def test_reset(self, cluster4):
        cluster4.clock.advance(5)
        cluster4.charge_memory(0, 100)
        cluster4.reset()
        assert cluster4.clock.now() == 0.0
        assert cluster4.memory_in_use(0) == 0.0
