"""Runtime cost audit (check_cost): drift detection, the ten-trainer
static-vs-dynamic agreement soak, and bit-identity of counted runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.engine import CostAuditor, CostReport, RoundEngine
from repro.errors import CostDriftError
from repro.linalg import OP_COUNTERS, SparseVector
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim.cost import WORK_LEDGER

from tests.test_engine_effects import TRAINER_NAMES, _builders


@pytest.fixture(autouse=True)
def _quiesce_counters():
    yield
    OP_COUNTERS.reset()
    OP_COUNTERS.disable()
    WORK_LEDGER.reset()
    WORK_LEDGER.disable()


# ----------------------------------------------------------------------
# unit behavior
# ----------------------------------------------------------------------
def test_uncharged_kernel_work_raises():
    auditor = CostAuditor(factor=1.0, slack=0.0)
    auditor.begin_round()
    v = SparseVector(np.arange(10), np.ones(10), dim=100)
    v.dot(np.ones(100))  # measured work, nothing charged
    with pytest.raises(CostDriftError) as excinfo:
        auditor.finish_round(3)
    assert "iteration 3" in str(excinfo.value)
    assert "exceeds" in str(excinfo.value)


def test_charged_work_within_budget_passes():
    auditor = CostAuditor(factor=16.0, slack=0.0)
    auditor.begin_round()
    v = SparseVector(np.arange(10), np.ones(10), dim=100)
    v.dot(np.ones(100))
    WORK_LEDGER.record_sparse(v.nnz)
    auditor.finish_round(0)
    (report,) = auditor.reports
    assert report.measured > 0
    assert report.charged == 10
    assert report.measured <= 16.0 * report.charged


def test_report_properties():
    report = CostReport(
        round=1, flops=100, alloc_elements=20, densify_events=0,
        peak_alloc_elements=20, sparse_units=50.0, dense_units=25.0,
    )
    assert report.measured == 120.0
    assert report.charged == 75.0


def test_finish_round_disables_counting():
    auditor = CostAuditor(factor=1e9, slack=1e9)
    auditor.begin_round()
    auditor.finish_round(0)
    before = OP_COUNTERS.snapshot()["flops"]
    SparseVector(np.array([1]), np.array([1.0]), dim=4).norm_sq()
    assert OP_COUNTERS.snapshot()["flops"] == before


# ----------------------------------------------------------------------
# static-vs-dynamic agreement: every trainer runs under the audit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_all_trainers_pass_cost_audit(name, cluster4, tiny_binary):
    """The default FACTOR/SLACK budget holds for every trainer — the
    dynamic counterpart of the tree being R015/R016-clean."""
    trainer = _builders(cluster4, tiny_binary)[name]()
    engine = RoundEngine(
        trainer, cluster4,
        straggler=getattr(trainer, "straggler", None),
        check_cost=True,
    )
    for t in range(3):
        engine.run_round(t)  # raises CostDriftError on drift
    assert len(engine.cost_audit.reports) == 3
    for report in engine.cost_audit.reports:
        # R015-clean statically == no densification dynamically
        assert report.densify_events == 0
        assert report.measured <= (
            engine.cost_audit.factor * report.charged + engine.cost_audit.slack
        )


def test_driver_fit_with_check_cost(tiny_binary, cluster4):
    config = ColumnSGDConfig(batch_size=64, iterations=3, check_cost=True)
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster4, config=config)
    driver.load(tiny_binary)
    result = driver.fit()
    assert result.final_params is not None


# ----------------------------------------------------------------------
# counting must not perturb the numerics
# ----------------------------------------------------------------------
def test_trajectory_bit_identical_with_audit_on(tiny_binary):
    from repro.sim import CLUSTER1, SimulatedCluster

    def run(check_cost):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(
            batch_size=64, iterations=4, check_cost=check_cost
        )
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), cluster, config=config
        )
        driver.load(tiny_binary)
        return driver.fit().final_params

    baseline = run(False)
    audited = run(True)
    assert np.array_equal(baseline, audited)
