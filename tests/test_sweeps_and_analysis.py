"""Tests for experiment sweeps and dataset analysis utilities."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.datasets.analysis import (
    describe,
    feature_frequencies,
    label_distribution,
    popularity_skew,
    row_length_stats,
)
from repro.experiments import ExperimentSpec
from repro.experiments.sweeps import (
    best_learning_rate,
    sweep_batch_sizes,
    sweep_learning_rates,
    sweep_workers,
)
from repro.sim import CLUSTER1


@pytest.fixture(scope="module")
def spec_and_data():
    data = make_classification(600, 300, nnz_per_row=8, seed=50, name="avazu")
    spec = ExperimentSpec(
        dataset="avazu", model="lr", batch_size=64, iterations=6,
        eval_every=3, learning_rate=1.0, cluster=CLUSTER1.with_workers(4),
        seed=50, explicit_data=data,
    )
    return spec, data


class TestSweeps:
    def test_batch_size_sweep(self, spec_and_data):
        spec, data = spec_and_data
        results = sweep_batch_sizes(spec, "columnsgd", [16, 128], data=data)
        assert set(results) == {16, 128}
        assert results[16].batch_size == 16
        assert results[128].batch_size == 128

    def test_worker_sweep(self, spec_and_data):
        spec, data = spec_and_data
        results = sweep_workers(spec, "columnsgd", [2, 4], data=data)
        assert results[2].n_workers == 2
        assert results[4].n_workers == 4

    def test_learning_rate_sweep_and_best(self, spec_and_data):
        spec, data = spec_and_data
        rates = [1e-9, 1.0]
        results = sweep_learning_rates(spec, "columnsgd", rates, data=data)
        assert results[1.0].final_loss() < results[1e-9].final_loss()
        assert best_learning_rate(spec, "columnsgd", rates, data=data) == 1.0

    def test_sweep_does_not_mutate_spec(self, spec_and_data):
        spec, data = spec_and_data
        sweep_batch_sizes(spec, "columnsgd", [16], data=data)
        assert spec.batch_size == 64

    def test_best_rate_requires_evaluations(self, spec_and_data):
        spec, data = spec_and_data
        from dataclasses import replace

        silent = replace(spec, eval_every=0)
        with pytest.raises(ValueError):
            best_learning_rate(silent, "columnsgd", [1.0], data=data)


class TestAnalysis:
    def test_feature_frequencies_sum_to_nnz(self, tiny_binary):
        freq = feature_frequencies(tiny_binary)
        assert freq.sum() == tiny_binary.nnz
        assert freq.size == tiny_binary.n_features

    def test_label_distribution(self, tiny_binary):
        dist = label_distribution(tiny_binary)
        assert set(dist) == {-1.0, 1.0}
        assert sum(dist.values()) == tiny_binary.n_rows

    def test_row_length_stats(self, tiny_binary):
        stats = row_length_stats(tiny_binary)
        assert stats["min"] >= 1
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_popularity_skew_uniform_vs_zipf(self):
        uniform = make_classification(800, 300, nnz_per_row=8,
                                      zipf_exponent=0.0, seed=51)
        zipf = make_classification(800, 300, nnz_per_row=8,
                                   zipf_exponent=1.4, seed=51)
        assert popularity_skew(zipf) > 2 * popularity_skew(uniform)

    def test_popularity_skew_validation(self, tiny_binary):
        with pytest.raises(ValueError):
            popularity_skew(tiny_binary, head_fraction=0.0)

    def test_describe_render(self, tiny_binary):
        report = describe(tiny_binary)
        text = report.render()
        assert "rows" in text
        assert "{:,}".format(tiny_binary.nnz) in text
        assert report.head1pct_share <= 1.0
