"""Tests for the whole-program analysis layer (rules R007-R011)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines.base import RowSGDConfig
from repro.baselines.mllib import MLlibTrainer
from repro.baselines.mllib_star import MLlibStarTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.sparse_ps import SparsePSTrainer
from repro.baselines.ssp import StaleSyncPSTrainer
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.lint import LintEngine, discover_sources, registered_program_rules
from repro.lint.cli import main as lint_main
from repro.lint.program import (
    UNCHECKED_KINDS,
    ProgramAnalyzer,
    extract_round_protocol,
)
from repro.models.linear import LogisticRegression
from repro.optim.sgd import SGD

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
PROGRAM_FIXTURES = Path(__file__).resolve().parent / "lint_fixtures" / "program"
PROGRAM_RULE_IDS = (
    "R007", "R008", "R009", "R010", "R011", "R012", "R013", "R014",
    "R015", "R016", "R017",
)


def lint_program_fixture(name: str, rule_id: str):
    engine = LintEngine(select=[rule_id])
    return engine.lint_paths([str(PROGRAM_FIXTURES / name)])


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule_id", ("R007", "R008", "R009", "R010", "R012", "R013", "R014")
)
def test_trigger_fixture_fires(rule_id):
    name = "{}_trigger.py".format(rule_id.lower())
    findings = lint_program_fixture(name, rule_id)
    assert findings, "{} produced no {} findings".format(name, rule_id)
    assert all(f.rule_id == rule_id for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize(
    "rule_id", ("R007", "R008", "R009", "R010", "R012", "R013", "R014")
)
def test_pass_fixture_is_clean(rule_id):
    name = "{}_pass.py".format(rule_id.lower())
    assert lint_program_fixture(name, rule_id) == []


def test_trigger_counts():
    """Pin the exact number of violations each trigger fixture encodes."""
    expected = {
        "R007": 2, "R008": 2, "R009": 2, "R010": 1,
        "R012": 2, "R013": 1, "R014": 1,
    }
    for rule_id, count in expected.items():
        name = "{}_trigger.py".format(rule_id.lower())
        assert len(lint_program_fixture(name, rule_id)) == count, rule_id


def test_layering_fixture():
    engine = LintEngine(select=["R011"])
    findings = engine.lint_paths([str(PROGRAM_FIXTURES / "layering")])
    assert [f.rule_id for f in findings] == ["R011", "R011"]
    by_file = {Path(f.path).name: f for f in findings}
    assert set(by_file) == {"bad_model.py", "bad_backend.py"}
    assert "repro.sim.clock" in by_file["bad_model.py"].message
    assert "repro.core.driver" in by_file["bad_backend.py"].message
    assert "runtime layer" in by_file["bad_backend.py"].message
    assert "good_backend" not in {Path(f.path).name for f in findings}


def test_r009_reports_at_the_literal_line():
    findings = lint_program_fixture("r009_trigger.py", "R009")
    source = (PROGRAM_FIXTURES / "r009_trigger.py").read_text(encoding="utf-8")
    lines = source.splitlines()
    flagged = {lines[f.line - 1].strip() for f in findings}
    assert flagged == {"return 4096", "send_padded(net, 512)"}


def test_r007_message_names_the_path():
    findings = lint_program_fixture("r007_trigger.py", "R007")
    assert any("jitter_seed -> numpy.random.default_rng" in f.message for f in findings)
    assert any("hidden_reseed -> jitter_seed" in f.message for f in findings)


# ----------------------------------------------------------------------
# acceptance scenarios built as throwaway trees
# ----------------------------------------------------------------------
def test_transitive_wallclock_reachable_from_sim(tmp_path):
    """A helper calling time.time() two modules away from repro/sim is
    invisible to per-file R003 but must fail R008."""
    pkg = tmp_path / "src" / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "utils").mkdir()
    (pkg / "utils" / "hostclock.py").write_text(
        "import time\n\n\ndef host_now():\n    return time.time()\n",
        encoding="utf-8",
    )
    (pkg / "sim" / "advance.py").write_text(
        "from repro.utils.hostclock import host_now\n\n\n"
        "def advance(clock):\n    clock.now = host_now()\n",
        encoding="utf-8",
    )
    findings = LintEngine(select=["R008"]).lint_paths([str(tmp_path / "src")])
    assert [f.rule_id for f in findings] == ["R008"]
    assert findings[0].path.endswith("advance.py")
    assert "time.time" in findings[0].message


def test_transitive_entropy_reachable_from_core(tmp_path):
    pkg = tmp_path / "src" / "repro"
    (pkg / "core").mkdir(parents=True)
    (pkg / "utils").mkdir()
    (pkg / "utils" / "shuffle2.py").write_text(
        "import numpy as np\n\n\ndef scramble(xs):\n"
        "    return np.random.permutation(xs)\n",
        encoding="utf-8",
    )
    (pkg / "core" / "picker.py").write_text(
        "from repro.utils.shuffle2 import scramble\n\n\n"
        "def pick(xs):\n    return scramble(xs)[0]\n",
        encoding="utf-8",
    )
    findings = LintEngine(select=["R007"]).lint_paths([str(tmp_path / "src")])
    assert [f.rule_id for f in findings] == ["R007"]
    assert findings[0].path.endswith("picker.py")


def test_transitive_layering_violation(tmp_path):
    """models -> utils -> net is a violation even though the first hop
    looks innocent."""
    pkg = tmp_path / "src" / "repro"
    (pkg / "models").mkdir(parents=True)
    (pkg / "utils").mkdir()
    (pkg / "net").mkdir()
    (pkg / "net" / "wire.py").write_text("WIRE = 1\n", encoding="utf-8")
    (pkg / "utils" / "bridge.py").write_text(
        "from repro.net.wire import WIRE\n\n\ndef wire():\n    return WIRE\n",
        encoding="utf-8",
    )
    (pkg / "models" / "leaky.py").write_text(
        "from repro.utils.bridge import wire\n\n\ndef use():\n    return wire()\n",
        encoding="utf-8",
    )
    findings = LintEngine(select=["R011"]).lint_paths([str(tmp_path / "src")])
    assert [f.rule_id for f in findings] == ["R011"]
    assert findings[0].path.endswith("leaky.py")
    assert "repro.net.wire" in findings[0].message


def test_sanctioned_rng_module_is_not_a_taint_source(tmp_path):
    """Calls into repro.utils.rng are the *fix* R007 asks for — they
    must never count as reaching entropy."""
    pkg = tmp_path / "src" / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "utils").mkdir()
    (pkg / "utils" / "rng.py").write_text(
        "import numpy as np\n\n\ndef rng_from_seed(seed):\n"
        "    return np.random.default_rng(seed)\n",
        encoding="utf-8",
    )
    (pkg / "sim" / "draw.py").write_text(
        "from repro.utils.rng import rng_from_seed\n\n\n"
        "def draw(seed):\n    return rng_from_seed(seed).integers(0, 10)\n",
        encoding="utf-8",
    )
    assert LintEngine(select=["R007"]).lint_paths([str(tmp_path / "src")]) == []


def test_sanctioned_runtime_local_is_not_a_wallclock_source(tmp_path):
    """The local backend measures wall-clock by contract: trainer code
    may call through repro.runtime.local without tripping R008, but any
    other module owning a timer still taints its callers."""
    pkg = tmp_path / "src" / "repro"
    (pkg / "core").mkdir(parents=True)
    (pkg / "runtime").mkdir()
    (pkg / "utils").mkdir()
    (pkg / "runtime" / "local.py").write_text(
        "import time\n\n\ndef measure(fn):\n"
        "    start = time.perf_counter()\n"
        "    out = fn()\n"
        "    return out, time.perf_counter() - start\n",
        encoding="utf-8",
    )
    (pkg / "core" / "exec.py").write_text(
        "from repro.runtime.local import measure\n\n\n"
        "def run_round(step):\n    return measure(step)\n",
        encoding="utf-8",
    )
    assert LintEngine(select=["R008"]).lint_paths([str(tmp_path / "src")]) == []
    # ... while the same timer in an unsanctioned module still fires.
    (pkg / "utils" / "stopwatch.py").write_text(
        "import time\n\n\ndef elapsed(fn):\n"
        "    start = time.perf_counter()\n"
        "    fn()\n    return time.perf_counter() - start\n",
        encoding="utf-8",
    )
    (pkg / "core" / "leaky.py").write_text(
        "from repro.utils.stopwatch import elapsed\n\n\n"
        "def run_round(step):\n    return elapsed(step)\n",
        encoding="utf-8",
    )
    findings = LintEngine(select=["R008"]).lint_paths([str(tmp_path / "src")])
    assert [f.rule_id for f in findings] == ["R008"]
    assert findings[0].path.endswith("leaky.py")


# ----------------------------------------------------------------------
# suppression and engine integration
# ----------------------------------------------------------------------
def test_noqa_at_sink_suppresses_program_rule(tmp_path):
    flagged = tmp_path / "proto_helper.py"
    flagged.write_text(
        "import time\n\n\n"
        "def read_clock():\n    return time.monotonic()\n\n\n"
        "def stamp():\n    return read_clock()  # lint: noqa[R008]\n",
        encoding="utf-8",
    )
    assert LintEngine(select=["R008"]).lint_paths([str(flagged)]) == []


def test_program_flag_off_skips_program_rules():
    engine = LintEngine(select=["R008"], program=False)
    assert engine.lint_paths([str(PROGRAM_FIXTURES / "r008_trigger.py")]) == []


def test_cli_no_program_flag(capsys):
    rc = lint_main(
        [str(PROGRAM_FIXTURES / "r007_trigger.py"), "--select", "R007", "--no-program"]
    )
    capsys.readouterr()
    assert rc == 0


def test_program_registry_is_complete():
    rules = registered_program_rules()
    assert set(PROGRAM_RULE_IDS) == set(rules)
    for rule_id, cls in rules.items():
        assert cls.rule_id == rule_id
        assert cls.title
        assert cls.fix_hint


def test_per_file_entry_points_never_run_program_rules():
    source = (PROGRAM_FIXTURES / "r008_trigger.py").read_text(encoding="utf-8")
    findings = LintEngine(select=["R008"]).lint_source(source, "r008_trigger.py")
    assert findings == []


# ----------------------------------------------------------------------
# static extraction vs the runtime ProtocolChecker declarations
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def src_protocols():
    analyzer = ProgramAnalyzer(discover_sources([str(SRC)]))
    return extract_round_protocol(analyzer.index)


BSP_BASELINES = [
    (MLlibTrainer, "repro.baselines.mllib.MLlibTrainer"),
    (MLlibStarTrainer, "repro.baselines.mllib_star.MLlibStarTrainer"),
    (ParameterServerTrainer, "repro.baselines.parameter_server.ParameterServerTrainer"),
    (SparsePSTrainer, "repro.baselines.sparse_ps.SparsePSTrainer"),
    (StaleSyncPSTrainer, "repro.baselines.ssp.StaleSyncPSTrainer"),
]

ENGINE_TRAINERS = {
    "repro.core.driver.ColumnSGDDriver",
    "repro.baselines.mllib.MLlibTrainer",
    "repro.baselines.mllib_star.MLlibStarTrainer",
    "repro.baselines.parameter_server.ParameterServerTrainer",
    "repro.baselines.sparse_ps.SparsePSTrainer",
    "repro.baselines.ssp.StaleSyncPSTrainer",
    "repro.extensions.cocoa.CoCoATrainer",
    "repro.extensions.coordinate_descent.RidgeCDTrainer",
    "repro.extensions.deep_mlp.DeepMLPColumnTrainer",
    "repro.extensions.mlp.MLPColumnTrainer",
}


def test_extraction_covers_every_engine_trainer(src_protocols):
    assert set(src_protocols) == ENGINE_TRAINERS


def test_extraction_is_internally_consistent(src_protocols):
    for qualname, record in src_protocols.items():
        assert record["style"] == "spec", qualname
        assert record["declared"], qualname
        # With the engine, only the CommPhase declarations emit traffic;
        # any kind found inside an executor body must also be declared.
        assert record["emitted"] <= record["declared"], qualname


def test_unchecked_kinds_mirror_runtime_checker():
    """The static extractor must skip exactly the kinds the runtime
    ProtocolChecker skips (scheduling, heartbeat, recovery traffic) —
    neither list may drift without the other."""
    from repro.net import protocol

    assert set(UNCHECKED_KINDS) == {k.name for k in protocol.UNCHECKED_KINDS}


@pytest.mark.parametrize("trainer_cls,qualname", BSP_BASELINES)
def test_static_extraction_matches_runtime_declaration(
    trainer_cls, qualname, cluster4, tiny_binary, src_protocols
):
    """The kinds the static extractor infers must equal the kinds the
    runtime ProtocolChecker is told to expect on a real checked run."""
    config = RowSGDConfig(batch_size=64, iterations=2, check_protocol=True)
    trainer = trainer_cls(LogisticRegression(), SGD(0.1), cluster4, config=config)
    trainer.load(tiny_binary)
    trainer.fit()
    runtime_kinds = {kind.name for kind in trainer.round_spec().comm_kinds()}
    assert src_protocols[qualname]["declared"] == runtime_kinds


def test_static_extraction_matches_runtime_driver_declaration(
    cluster4, tiny_binary, src_protocols
):
    config = ColumnSGDConfig(batch_size=64, iterations=2, check_protocol=True)
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster4, config=config)
    driver.load(tiny_binary)
    driver.fit()
    runtime_kinds = {kind.name for kind in driver.round_spec().comm_kinds()}
    record = src_protocols["repro.core.driver.ColumnSGDDriver"]
    assert record["declared"] == runtime_kinds
