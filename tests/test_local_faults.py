"""Real-fault tests for the local multiprocess backend.

These tests SIGKILL actual worker processes, stall handlers past their
deadlines, and drop reply frames on the master side — then require the
training job to finish every iteration anyway, recovering through
respawn + on-disk checkpoint restore, with the whole fault pipeline
visible on the engine trace (RecoveryEvent / RetryEvent).

The central invariants:

* **bounded waits** — no transport call blocks past its deadline; dead
  and hung workers surface as structured failures, never as hangs.
* **at-most-once** — retried frames reuse their sequence number and the
  worker replays its cached reply, so a retried ``update`` is never
  applied twice.
* **fault transparency** — stalls, drops, and garbles never change the
  numbers (diff vs the simulator stays exactly 0.0); only a kill that
  escalates to zero-init is allowed to move the trajectory.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.core.recovery import LocalCheckpointStore, RecoveryPolicy
from repro.datasets import make_classification
from repro.errors import ConfigurationError, WorkerUnresponsiveError
from repro.models import LogisticRegression
from repro.net.message import MessageKind
from repro.optim import SGD
from repro.runtime import (
    LocalChaos,
    LocalFaultEvent,
    LocalFaultKind,
    LocalRuntime,
    TimeoutPolicy,
)
from repro.sim import CLUSTER1, SimulatedCluster

WORKERS = 4
ITERATIONS = 10
BATCH = 32


@pytest.fixture(scope="module")
def data():
    return make_classification(200, 80, nnz_per_row=10, seed=5)


def make_driver(data, *, iterations=ITERATIONS, backend="local",
                recovery=None, failures=None, **extra):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    config = ColumnSGDConfig(
        batch_size=BATCH,
        iterations=iterations,
        eval_every=5,
        seed=3,
        backend=backend,
        # one OS process per logical worker, so SIGKILLing a worker
        # does not take innocent co-tenants down with it
        local_processes=WORKERS if backend == "local" else 0,
        check_protocol=True,
        **extra,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster, config=config,
        recovery=recovery, failures=failures,
    )
    driver.load(data)
    return driver


class CrashyProgram:
    """Echo program whose 'die' op SIGKILLs its own host process and
    whose 'inc' op counts invocations (for at-most-once checks)."""

    def __init__(self):
        self.count = 0

    def handle(self, op, args, payload):
        if op == "die":
            os.kill(os.getpid(), signal.SIGKILL)
        if op == "inc":
            self.count += 1
        return {"count": self.count, "pid": os.getpid()}, payload


def started_runtime(timeout, workers=3):
    runtime = LocalRuntime(workers, processes=workers, timeout=timeout)
    runtime.start({w: CrashyProgram() for w in range(workers)})
    return runtime


FAST = dict(floor_s=0.4, alpha=3.0, backoff=2.0)


# ----------------------------------------------------------------------
# deadline-bounded transport (satellite: worker-death paths)
# ----------------------------------------------------------------------
class TestDeadlineTransport:
    def test_sigkill_mid_exchange_surfaces_worker_died(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=1, **FAST))
        try:
            exchange = runtime.run_all("die", workers=[0], raise_on_fault=False)
            assert exchange.dead_workers() == [0]
            assert not exchange.ok()
            assert 0 in runtime.dead_workers()
            # survivors keep answering
            alive = runtime.run_all("echo", workers=[1, 2])
            assert sorted(alive.replies) == [1, 2]
        finally:
            runtime.close()

    def test_hung_handler_hits_the_deadline(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=1, **FAST))
        try:
            exchange = runtime.run_all(
                "echo",
                per_worker_args={0: {"__delay__": 5.0}},
                raise_on_fault=False,
            )
            # the process is alive but silent past every deadline
            assert exchange.silent_workers() == [0]
            assert exchange.dead_workers() == []
            assert sorted(exchange.replies) == [1, 2]
            assert exchange.retries >= 1
            assert runtime.dead_workers() == []
        finally:
            runtime.close()

    def test_stale_reply_from_previous_exchange_is_skipped(self):
        """After a timeout the worker eventually finishes its nap and
        writes the old reply; the next exchange must not mistake it for
        its own answer (sequence numbers disambiguate)."""
        runtime = started_runtime(TimeoutPolicy(max_retries=0, **FAST))
        try:
            first = runtime.run_all(
                "echo",
                per_worker_args={0: {"__delay__": 1.2}},
                raise_on_fault=False,
            )
            assert first.silent_workers() == [0]
            time.sleep(1.4)  # let the stale reply land in the pipe
            second = runtime.run_all("inc", workers=[0])
            assert second.replies[0].result["count"] == 1
        finally:
            runtime.close()

    def test_run_all_raises_structured_error_on_dead_worker(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=0, **FAST))
        try:
            runtime.kill_worker(1)
            with pytest.raises(WorkerUnresponsiveError) as err:
                runtime.run_all("echo")
            assert err.value.dead == (1,)
        finally:
            runtime.close()

    def test_barrier_timeout_raises_instead_of_hanging(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=0, **FAST))
        try:
            runtime.kill_worker(0)
            with pytest.raises(WorkerUnresponsiveError):
                runtime.barrier()
        finally:
            runtime.close()

    def test_close_returns_with_a_dead_process(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=0, **FAST))
        runtime.kill_worker(2)
        runtime.close()  # must be bounded: no infinite join on the corpse
        runtime.close()  # and idempotent

    def test_respawn_revives_dead_workers(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=0, **FAST))
        try:
            runtime.kill_worker(0)
            assert runtime.dead_workers() == [0]
            seconds = runtime.respawn({0: CrashyProgram()})
            assert seconds >= 0.0
            assert runtime.dead_workers() == []
            exchange = runtime.run_all("echo")
            assert sorted(exchange.replies) == [0, 1, 2]
        finally:
            runtime.close()


# ----------------------------------------------------------------------
# at-most-once delivery under drop/garble faults
# ----------------------------------------------------------------------
class TestAtMostOnce:
    def test_dropped_reply_is_resent_without_reexecution(self):
        """DROP discards the reply at the master; the deadline expires,
        the frame is resent with the same seq, and the worker replays
        its cached reply — 'inc' runs exactly once."""
        runtime = started_runtime(TimeoutPolicy(max_retries=2, **FAST))
        try:
            runtime.inject_faults(
                [LocalFaultEvent(iteration=0, kind=LocalFaultKind.DROP, worker=0)]
            )
            exchange = runtime.run_all("inc", workers=[0], iteration=0)
            assert exchange.replies[0].result["count"] == 1
            assert exchange.retries >= 1
            again = runtime.run_all("inc", workers=[0])
            assert again.replies[0].result["count"] == 2
        finally:
            runtime.close()

    def test_garbled_reply_accounts_wasted_retry_bytes(self):
        runtime = started_runtime(TimeoutPolicy(max_retries=2, **FAST))
        try:
            runtime.inject_faults(
                [LocalFaultEvent(iteration=0, kind=LocalFaultKind.GARBLE, worker=1)]
            )
            exchange = runtime.run_all(
                "inc", payload=b"x" * 64, workers=[1], iteration=0
            )
            assert exchange.replies[1].result["count"] == 1
            assert exchange.retries >= 1
            assert runtime.network.bytes_of_kind(MessageKind.RETRY) > 0
        finally:
            runtime.close()

    def test_retry_event_lands_on_the_engine_trace(self):
        from repro.engine import EngineTrace

        runtime = started_runtime(TimeoutPolicy(max_retries=2, **FAST))
        runtime.engine_trace = EngineTrace(system="test")
        try:
            runtime.inject_faults(
                [LocalFaultEvent(iteration=7, kind=LocalFaultKind.DROP, worker=0)]
            )
            runtime.run_all("inc", workers=[0], iteration=7)
            events = runtime.engine_trace.round_retries(7)
            assert events
            assert events[0].suspects == (0,)
            assert events[0].resolved == "arrived"
        finally:
            runtime.close()


# ----------------------------------------------------------------------
# the chaos plan
# ----------------------------------------------------------------------
class TestLocalChaos:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            chaos = LocalChaos(mtbf_rounds=3.0, seed=seed, n_workers=4)
            return [
                (e.iteration, e.kind, e.worker)
                for t in range(30)
                for e in chaos.events_at(t)
            ]

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_mtbf_produces_poisson_arrivals(self):
        chaos = LocalChaos(mtbf_rounds=2.0, seed=0, n_workers=4)
        events = [e for t in range(40) for e in chaos.events_at(t)]
        # 40 rounds at MTBF 2 → ~20 expected; allow wide slack
        assert 5 <= len(events) <= 40
        assert all(0 <= e.worker < 4 for e in events)

    def test_scripted_plan_is_exact(self):
        chaos = LocalChaos.scripted(
            kills={3: 1},
            stalls={(4, 0): 0.25},
            drops=[(5, 2)],
            garbles=[(6, 3)],
        )
        assert chaos.any_scheduled()
        assert [(e.kind, e.worker) for e in chaos.events_at(3)] == [
            (LocalFaultKind.KILL, 1)
        ]
        stall = chaos.events_at(4)[0]
        assert (stall.kind, stall.worker, stall.stall_s) == (
            LocalFaultKind.STALL, 0, 0.25,
        )
        assert chaos.events_at(7) == []

    def test_validate_rejects_out_of_range_victims(self):
        chaos = LocalChaos.scripted(kills={0: 9})
        with pytest.raises(ConfigurationError):
            chaos.validate(4)


# ----------------------------------------------------------------------
# the on-disk checkpoint store
# ----------------------------------------------------------------------
class TestLocalCheckpointStore:
    def test_roundtrip(self):
        with LocalCheckpointStore() as store:
            store.write(4, 7, (3,), b"params", b"opt")
            assert store.has_snapshot(7)
            assert store.snapshot_iteration(7) == 4
            iteration, shape, params, opt = store.read(7)
            assert (iteration, shape, params, opt) == (4, (3,), b"params", b"opt")

    def test_overwrite_keeps_newest(self):
        with LocalCheckpointStore() as store:
            store.write(2, 0, (2,), b"old", b"o1")
            store.write(4, 0, (2,), b"new", b"o2")
            assert store.read(0)[0] == 4
            assert store.read(0)[2] == b"new"
            assert store.writes == 2
            assert store.bytes_written > 0

    def test_missing_partition_raises(self):
        with LocalCheckpointStore() as store:
            with pytest.raises(ConfigurationError):
                store.read(3)

    def test_close_removes_owned_directory(self):
        store = LocalCheckpointStore()
        store.write(0, 0, (1,), b"p", b"o")
        directory = store.directory
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.isdir(directory)


# ----------------------------------------------------------------------
# end-to-end recovery (the acceptance criterion)
# ----------------------------------------------------------------------
class TestColumnSGDFaultRecovery:
    def test_sigkilled_workers_recover_from_checkpoints(self, data):
        """Two workers SIGKILLed mid-run; training completes all
        iterations, restoring each from its on-disk snapshot."""
        driver = make_driver(
            data,
            sync_policy="retry",
            local_timeout_s=1.0,
            recovery=RecoveryPolicy(checkpoint_every=2),
            failures=LocalChaos.scripted(kills={3: 1, 6: 2}),
        )
        result = driver.fit()
        trace = driver.cluster.engine_trace
        recoveries = [(e.round, e.worker, e.mode) for e in trace.recoveries]
        assert recoveries == [(3, 1, "checkpoint"), (6, 2, "checkpoint")]
        assert all(e.kind == "worker" for e in trace.recoveries)
        assert trace.rounds() == list(range(ITERATIONS))
        assert np.isfinite(result.final_loss())
        assert driver.local_checkpoints.writes > 0

    def test_kill_without_checkpoint_escalates_to_zero_init(self, data):
        driver = make_driver(
            data,
            sync_policy="retry",
            local_timeout_s=1.0,
            failures=LocalChaos.scripted(kills={2: 0}),
        )
        result = driver.fit()
        trace = driver.cluster.engine_trace
        assert [(e.round, e.worker, e.mode) for e in trace.recoveries] == [
            (2, 0, "zero-init")
        ]
        assert trace.rounds() == list(range(ITERATIONS))
        assert np.isfinite(result.final_loss())

    def test_nonlethal_faults_do_not_change_the_numbers(self, data):
        """Stalls, drops, and garbles cost retries and wall-clock time
        but never move the trajectory: the final model matches the
        fault-free simulator bit for bit."""
        reference = make_driver(data, backend="sim").fit()
        driver = make_driver(
            data,
            sync_policy="retry",
            local_timeout_s=1.0,
            recovery=RecoveryPolicy(checkpoint_every=3),
            failures=LocalChaos.scripted(
                stalls={(2, 0): 0.05},
                drops=[(4, 3)],
                garbles=[(7, 1)],
            ),
        )
        faulted = driver.fit()
        diff = float(
            np.max(np.abs(faulted.final_params - reference.final_params))
        )
        assert diff == 0.0
        assert driver.cluster.engine_trace.retries  # faults really fired

    def test_chaos_off_is_bit_identical_to_sim(self, data):
        """The full fault machinery (deadlines, retry policy, real
        checkpoint spills) must be numerically invisible when no fault
        fires."""
        reference = make_driver(data, backend="sim").fit()
        local = make_driver(
            data,
            sync_policy="retry",
            recovery=RecoveryPolicy(checkpoint_every=2),
        ).fit()
        diff = float(
            np.max(np.abs(local.final_params - reference.final_params))
        )
        assert diff == 0.0

    def test_mllib_recovers_by_reload(self, data):
        from repro.baselines.registry import make_trainer

        def fit(failures=None):
            cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
            trainer = make_trainer(
                "mllib",
                LogisticRegression(),
                SGD(0.5),
                cluster,
                batch_size=BATCH,
                iterations=ITERATIONS,
                eval_every=5,
                seed=3,
                backend="local" if failures is not None else "sim",
                local_processes=WORKERS if failures is not None else 0,
                local_timeout_s=1.0,
                check_protocol=True,
                failures=failures,
            )
            trainer.load(data)
            return trainer, trainer.fit()

        _, reference = fit()
        trainer, faulted = fit(LocalChaos.scripted(kills={2: 1, 5: 3}))
        trace = trainer.cluster.engine_trace
        assert [(e.round, e.worker, e.mode) for e in trace.recoveries] == [
            (2, 1, "reload"), (5, 3, "reload")
        ]
        # the model lives at the master: reload recovery loses nothing
        diff = float(
            np.max(np.abs(faulted.final_params - reference.final_params))
        )
        assert diff == 0.0
