"""Fault tolerance in the driver (Section X / Fig 13)."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import MasterFailedError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import (
    CLUSTER1,
    FailureEvent,
    FailureInjector,
    FailureKind,
    SimulatedCluster,
)


def run(data, failures=None, backup=0, iterations=30, workers=4):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    config = ColumnSGDConfig(
        batch_size=64, iterations=iterations, eval_every=2, seed=9,
        block_size=64, backup=backup,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config, failures=failures
    )
    driver.load(data)
    return driver, driver.fit()


class TestTaskFailure:
    def test_task_failure_barely_costs(self, small_binary):
        _, clean = run(small_binary)
        _, failed = run(small_binary, FailureInjector.task_failure(10, worker_id=1))
        # one extra task launch over the whole run
        assert failed.total_sim_time - clean.total_sim_time < 0.1
        assert failed.total_sim_time > clean.total_sim_time

    def test_task_failure_does_not_change_numerics(self, small_binary):
        """Fig 13(a): convergence unaffected by task failure."""
        _, clean = run(small_binary)
        _, failed = run(small_binary, FailureInjector.task_failure(10, worker_id=1))
        assert np.allclose(clean.final_params, failed.final_params, atol=1e-12)


class TestWorkerFailure:
    def test_worker_failure_spikes_then_recovers(self, small_binary):
        """Fig 13(b): the loss jumps when a model partition is zeroed,
        then SGD re-converges."""
        _, clean = run(small_binary)
        _, failed = run(small_binary, FailureInjector.worker_failure(14, worker_id=2))
        clean_losses = dict((it, loss) for it, _, loss in clean.losses())
        failed_losses = dict((it, loss) for it, _, loss in failed.losses())
        # loss right after the failure is worse than the clean run's
        after = min(it for it in failed_losses if it >= 14)
        assert failed_losses[after] > clean_losses[after]
        # ... but training continues and ends below the initial loss
        assert failed_losses[max(failed_losses)] < failed_losses[-1]

    def test_worker_failure_costs_reload_time(self, small_binary):
        _, clean = run(small_binary)
        _, failed = run(small_binary, FailureInjector.worker_failure(14, worker_id=2))
        assert failed.total_sim_time > clean.total_sim_time

    def test_worker_failure_with_backup_loses_nothing(self, small_binary):
        """With a replica, the model partition survives the crash."""
        _, clean = run(small_binary, backup=1)
        _, failed = run(
            small_binary, FailureInjector.worker_failure(14, worker_id=2), backup=1
        )
        assert np.allclose(clean.final_params, failed.final_params, atol=1e-9)

    def test_training_continues_after_failure(self, small_binary):
        _, failed = run(small_binary, FailureInjector.worker_failure(5, worker_id=0))
        assert failed.n_iterations >= 30


class TestMasterFailure:
    def test_master_failure_aborts(self, small_binary):
        injector = FailureInjector([FailureEvent(3, FailureKind.MASTER)])
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=32, iterations=10, block_size=64)
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster, config=config, failures=injector
        )
        driver.load(small_binary)
        with pytest.raises(MasterFailedError):
            driver.fit()
