"""Local (multiprocess) backend tests.

The acceptance property from the paper reproduction's point of view:
one job seed must draw the same batches and produce the same model on
every backend.  The simulator establishes the reference trajectory;
these tests run the *same* job on real worker processes — statistics
crossing real pipes through the codec — and require the final model to
agree within 1e-9 (with the fp64 codec it agrees exactly).
"""

import numpy as np
import pytest

from repro.baselines.registry import make_trainer
from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.core.localexec import make_local_runtime
from repro.datasets import make_classification
from repro.errors import ConfigurationError, SimulationError
from repro.models import LogisticRegression
from repro.net.message import MessageKind
from repro.optim import SGD
from repro.runtime import LocalRuntime
from repro.sim import CLUSTER1, SimulatedCluster

WORKERS = 4
ITERATIONS = 8
BATCH = 32


@pytest.fixture(scope="module")
def data():
    return make_classification(200, 80, nnz_per_row=10, seed=5)


def make_driver(data, backend, processes=0, wire_precision="fp64", **extra):
    cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
    config = ColumnSGDConfig(
        batch_size=BATCH,
        iterations=ITERATIONS,
        eval_every=4,
        seed=3,
        backend=backend,
        local_processes=processes,
        wire_precision=wire_precision,
        check_protocol=True,
        **extra,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster, config=config
    )
    driver.load(data)
    return driver


# ----------------------------------------------------------------------
# cross-backend determinism (the acceptance criterion)
# ----------------------------------------------------------------------
class TestCrossBackendDeterminism:
    def test_columnsgd_final_model_matches_sim(self, data):
        sim_result = make_driver(data, "sim").fit()
        local_result = make_driver(data, "local", processes=WORKERS).fit()
        np.testing.assert_allclose(
            local_result.final_params, sim_result.final_params, atol=1e-9
        )
        # ... and the real encoded bytes equal the simulator's byte model.
        assert local_result.total_bytes() == sim_result.total_bytes()
        assert local_result.final_loss() == pytest.approx(
            sim_result.final_loss(), abs=1e-9
        )

    def test_batch_draws_identical_across_process_boundary(self, data):
        """Every worker process holds its own TwoPhaseIndex copy; the
        (seed, iteration) routing must give all of them — and the parent
        — the same draw sequence, with no batch-index traffic."""
        driver = make_driver(data, "local")
        runtime, programs = make_local_runtime(driver)
        runtime.start(programs)
        try:
            for t in (0, 1, 5):
                expected = [
                    tuple(map(int, d)) for d in driver._index.sample(t, BATCH)
                ]
                exchange = runtime.run_all("draws", args={"t": t})
                for worker in range(WORKERS):
                    draws = exchange.replies[worker].result["draws"]
                    assert [tuple(d) for d in draws] == expected
        finally:
            runtime.close()

    def test_process_packing_does_not_change_the_numbers(self, data):
        """K logical workers on 2 processes == K processes, bit for bit
        (each logical worker keeps its own program state)."""
        spread = make_driver(data, "local", processes=WORKERS).fit()
        packed = make_driver(data, "local", processes=2).fit()
        np.testing.assert_array_equal(
            packed.final_params, spread.final_params
        )

    def test_fp32_wire_matches_sim_exactly(self, data):
        """The codec's float32 encode must round exactly like the
        simulator's _through_wire."""
        sim_result = make_driver(data, "sim", wire_precision="fp32").fit()
        local_result = make_driver(data, "local", wire_precision="fp32").fit()
        np.testing.assert_allclose(
            local_result.final_params, sim_result.final_params, atol=1e-9
        )
        assert local_result.total_bytes() == sim_result.total_bytes()

    def test_mllib_local_matches_sim(self, data):
        results = {}
        for backend in ("sim", "local"):
            cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
            trainer = make_trainer(
                "mllib",
                LogisticRegression(),
                SGD(0.5),
                cluster,
                batch_size=BATCH,
                iterations=ITERATIONS,
                eval_every=4,
                seed=3,
                backend=backend,
            )
            trainer.load(data)
            results[backend] = trainer.fit()
        np.testing.assert_allclose(
            results["local"].final_params,
            results["sim"].final_params,
            atol=1e-9,
        )
        assert results["local"].total_bytes() == results["sim"].total_bytes()


# ----------------------------------------------------------------------
# measured time and tracing
# ----------------------------------------------------------------------
class TestMeasuredRounds:
    def test_local_rounds_report_wall_clock_time(self, data):
        driver = make_driver(data, "local")
        result = driver.fit()
        assert result.avg_iteration_seconds() > 0.0
        # simulated time would be identical across runs; wall-clock
        # timestamps must be monotone within the run
        times = [t for _, t, _ in result.losses()]
        assert times == sorted(times)

    def test_local_run_fills_the_engine_trace(self, data):
        driver = make_driver(data, "local")
        driver.fit()
        trace = driver.cluster.engine_trace
        assert trace is not None
        phases = {e.phase for e in trace.events}
        assert phases == {
            "compute_statistics", "gather", "reduce", "broadcast",
            "update_model",
        }
        assert {e.round for e in trace.events} == set(range(ITERATIONS))
        assert all(e.end >= e.start for e in trace.events)


# ----------------------------------------------------------------------
# configuration validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ColumnSGDConfig(backend="bogus")

    def test_negative_local_processes_rejected(self):
        with pytest.raises(ValueError):
            ColumnSGDConfig(local_processes=-1)

    def test_local_rejects_backup_computation(self):
        with pytest.raises(ValueError, match="backup"):
            ColumnSGDConfig(backend="local", backup=1)

    def test_local_accepts_timeout_sync_policies(self):
        """Deadline-bounded transport made the relaxed-barrier policies
        real on the local backend (they used to be rejected)."""
        for policy in ("retry", "timeout"):
            config = ColumnSGDConfig(backend="local", sync_policy=policy)
            assert config.sync_policy == policy

    def test_local_accepts_checkpointing(self, data):
        """A RecoveryPolicy with a checkpoint cadence is honoured on the
        local backend (real spills; see tests/test_local_faults.py)."""
        from repro.core.recovery import RecoveryPolicy

        cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
        driver = ColumnSGDDriver(
            LogisticRegression(),
            SGD(0.5),
            cluster,
            config=ColumnSGDConfig(
                batch_size=BATCH, iterations=4, seed=3, backend="local"
            ),
            recovery=RecoveryPolicy(checkpoint_every=2),
        )
        driver.load(data)
        driver.fit()
        store = driver.local_checkpoints
        assert store is not None
        assert store.writes > 0
        assert store.bytes_written > 0

    def test_local_rejects_engine_audits(self):
        with pytest.raises(ValueError, match="check_effects"):
            ColumnSGDConfig(backend="local", check_effects=True)
        with pytest.raises(ValueError, match="check_effects"):
            ColumnSGDConfig(backend="local", check_cost=True)

    def test_local_rejects_failure_injection(self, data):
        from repro.sim.failures import FailureInjector

        cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
        driver = ColumnSGDDriver(
            LogisticRegression(),
            SGD(0.5),
            cluster,
            config=ColumnSGDConfig(
                batch_size=BATCH, iterations=ITERATIONS, seed=3, backend="local"
            ),
            failures=FailureInjector.worker_failure(iteration=2, worker_id=1),
        )
        driver.load(data)
        # Simulated fault plans cannot reach real processes; the error
        # points at the real-fault alternative (repro.runtime.LocalChaos,
        # exercised in tests/test_local_faults.py).
        with pytest.raises(ConfigurationError, match="LocalChaos"):
            driver.fit()

    def test_only_mllib_baseline_supports_local(self, data):
        cluster = SimulatedCluster(CLUSTER1.with_workers(WORKERS))
        trainer = make_trainer(
            "petuum",
            LogisticRegression(),
            SGD(0.5),
            cluster,
            batch_size=BATCH,
            iterations=ITERATIONS,
            seed=3,
            backend="local",
        )
        trainer.load(data)
        with pytest.raises(ConfigurationError, match="simulator-only"):
            trainer.fit()


# ----------------------------------------------------------------------
# LocalRuntime mechanics
# ----------------------------------------------------------------------
class EchoProgram:
    """Test program: echoes args/payload; 'boom' raises remotely."""

    def handle(self, op, args, payload):
        if op == "boom":
            raise RuntimeError("kaboom")
        return {"echo": args.get("x")}, payload


def started_runtime(workers=3, processes=2):
    runtime = LocalRuntime(workers, processes=processes)
    runtime.start({w: EchoProgram() for w in range(workers)})
    return runtime


class TestLocalRuntimeMechanics:
    def test_run_all_reaches_every_logical_worker(self):
        runtime = started_runtime()
        try:
            assert runtime.n_processes == 2
            exchange = runtime.run_all("echo", args={"x": 7}, payload=b"abc")
            assert sorted(exchange.replies) == [0, 1, 2]
            assert all(r.result["echo"] == 7 for r in exchange.replies.values())
            assert exchange.payloads() == {0: b"abc", 1: b"abc", 2: b"abc"}
            assert exchange.seconds >= 0.0
            assert exchange.comm_seconds() >= 0.0
        finally:
            runtime.close()

    def test_per_worker_args_override_shared_args(self):
        runtime = started_runtime()
        try:
            exchange = runtime.run_all(
                "echo", args={"x": 0}, per_worker_args={2: {"x": 99}}
            )
            assert exchange.replies[0].result["echo"] == 0
            assert exchange.replies[2].result["echo"] == 99
        finally:
            runtime.close()

    def test_remote_exception_surfaces_as_simulation_error(self):
        runtime = started_runtime()
        try:
            with pytest.raises(SimulationError, match="kaboom"):
                runtime.run_all("boom")
        finally:
            runtime.close()

    def test_error_exchange_drains_inflight_replies(self):
        """Regression: a remote error must not abandon the other
        workers' replies in their pipes — the next exchange would read
        them as its own answers.  The raise happens only after the
        exchange fully drains."""
        runtime = started_runtime()
        try:
            with pytest.raises(SimulationError, match="kaboom"):
                runtime.run_all("boom", payload=b"stale")
            exchange = runtime.run_all("echo", args={"x": 11}, payload=b"fresh")
            assert sorted(exchange.replies) == [0, 1, 2]
            assert all(
                r.result["echo"] == 11 for r in exchange.replies.values()
            )
            assert exchange.payloads() == {w: b"fresh" for w in range(3)}
        finally:
            runtime.close()

    def test_error_message_names_every_failing_worker(self):
        runtime = started_runtime()
        try:
            with pytest.raises(SimulationError) as err:
                runtime.run_all("boom")
            for worker in range(3):
                assert "worker {}".format(worker) in str(err.value)
        finally:
            runtime.close()

    def test_allreduce_accounts_exact_byte_total(self):
        """The ring split must cover every byte: uneven sizes hand the
        remainder to the last shard (2(n-1)·(size//n) + size%n total)."""
        for workers, size in ((3, 1000), (4, 1001), (5, 7), (2, 0)):
            runtime = LocalRuntime(workers)
            runtime.allreduce(MessageKind.MODEL_AVG, size)
            expected = 2 * (workers - 1) * (size // workers) + size % workers
            assert runtime.network.total_bytes() == expected, (workers, size)

    def test_allreduce_single_worker_sends_nothing(self):
        runtime = LocalRuntime(1)
        assert runtime.allreduce(MessageKind.MODEL_AVG, 512) == 0.0
        assert runtime.network.total_bytes() == 0

    def test_transport_methods_account_without_advancing_time(self):
        runtime = LocalRuntime(3)
        assert runtime.gather(MessageKind.STATISTICS_PUSH, [10, 20, 30]) == 0.0
        assert runtime.broadcast(MessageKind.STATISTICS_BCAST, 50) == 0.0
        assert runtime.network.total_bytes() == 60 + 3 * 50
        assert runtime.clock.now() == 0.0

    def test_barrier_round_trips_every_process(self):
        runtime = started_runtime()
        try:
            runtime.barrier()  # would raise if a process were dead
        finally:
            runtime.close()
        runtime.barrier()  # no-op when not started

    def test_run_all_requires_start(self):
        with pytest.raises(SimulationError, match="not started"):
            LocalRuntime(2).run_all("echo")

    def test_start_twice_rejected(self):
        runtime = started_runtime()
        try:
            with pytest.raises(SimulationError, match="already started"):
                runtime.start({w: EchoProgram() for w in range(3)})
        finally:
            runtime.close()

    def test_missing_worker_program_rejected(self):
        runtime = LocalRuntime(3)
        with pytest.raises(ConfigurationError, match="worker"):
            runtime.start({0: EchoProgram()})

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start_method"):
            LocalRuntime(2, start_method="thread")

    def test_close_is_idempotent(self):
        runtime = started_runtime()
        runtime.close()
        runtime.close()

    def test_measure_returns_result_and_seconds(self):
        result, seconds = LocalRuntime(1).measure(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0
