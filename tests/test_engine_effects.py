"""Phase-effect machinery: DAG helpers, runtime recorder, and the
static-vs-dynamic agreement the ``check_effects`` flag guarantees.

The contract under test: for every trainer, every attribute atom the
runtime recorder observes a phase touching is covered by the static
effect sets lint rule R012 infers for that phase (dynamic reads land in
inferred reads-or-writes, dynamic writes in inferred writes).  The
static side over-approximates — deep mutation through container reads
becomes a write — so the inclusion runs one way only.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines import (
    MLlibStarTrainer,
    MLlibTrainer,
    ParameterServerTrainer,
    RowSGDConfig,
    SparsePSTrainer,
    StaleSyncPSTrainer,
)
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.engine import (
    ComputePhase,
    MasterPhase,
    RoundEngine,
    RoundSpec,
    concurrent_pairs,
    happens_before,
    vector_clocks,
)
from repro.engine.effects import EffectChecker, atoms_conflict
from repro.errors import EffectRaceError
from repro.extensions import (
    CoCoATrainer,
    ColumnMLP,
    DeepColumnMLP,
    DeepMLPColumnTrainer,
    MLPColumnTrainer,
    RidgeCDTrainer,
)
from repro.lint import ProgramAnalyzer, discover_sources
from repro.lint.effects import EffectInference, extract_round_specs
from repro.models import LogisticRegression
from repro.optim import SGD

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# happens-before helpers
# ----------------------------------------------------------------------
def _spec(*phases):
    return RoundSpec(system="t", phases=tuple(phases))


def _compute(name, after=None):
    return ComputePhase(name, run="_run", synchronized=False, after=after)


class TestHappensBefore:
    def test_chain_is_totally_ordered(self):
        spec = _spec(_compute("a"), _compute("b"), _compute("c"))
        assert concurrent_pairs(spec.phases) == []
        clocks = vector_clocks(spec.phases)
        assert happens_before(clocks, "a", "c")
        assert not happens_before(clocks, "c", "a")

    def test_after_empty_is_concurrent_with_everything_prior(self):
        spec = _spec(_compute("a"), _compute("b"), _compute("p", after=()))
        assert ("a", "p") in concurrent_pairs(spec.phases)
        assert ("b", "p") in concurrent_pairs(spec.phases)

    def test_diamond_orders_ends_not_siblings(self):
        spec = _spec(
            _compute("a"),
            _compute("left", after=("a",)),
            _compute("right", after=("a",)),
            _compute("join", after=("left", "right")),
        )
        assert concurrent_pairs(spec.phases) == [("left", "right")]
        clocks = vector_clocks(spec.phases)
        assert happens_before(clocks, "a", "join")

    def test_transitive_ancestry_via_declared_deps(self):
        spec = _spec(
            _compute("a"),
            _compute("b", after=("a",)),
            _compute("c", after=("b",)),
        )
        clocks = vector_clocks(spec.phases)
        assert happens_before(clocks, "a", "c")

    def test_atom_conflicts(self):
        assert atoms_conflict("self.model", "self.model")
        assert not atoms_conflict("self.model", "self.master")
        assert atoms_conflict("ctx.scratch[*]", "ctx.scratch[reduced]")
        assert atoms_conflict("ctx.scratch[reduced]", "ctx.scratch[*]")
        assert not atoms_conflict("ctx.scratch[a]", "ctx.scratch[b]")


# ----------------------------------------------------------------------
# the runtime recorder and checker
# ----------------------------------------------------------------------
class _Stub:
    pass


class _Ctx:
    def __init__(self):
        self.scratch = {}
        self.t = 0


class TestEffectChecker:
    def _checker(self):
        spec = _spec(_compute("a"), _compute("b", after=()))
        return EffectChecker(spec)

    def test_concurrent_write_read_raises(self):
        checker = self._checker()
        checker.begin_round()
        trainer, ctx = _Stub(), _Ctx()
        _, ctx_a = checker.views("a", trainer, ctx)
        ctx_a.scratch["batch"] = 1
        _, ctx_b = checker.views("b", trainer, ctx)
        assert ctx_b.scratch["batch"] == 1
        with pytest.raises(EffectRaceError) as err:
            checker.finish_round(7)
        assert err.value.iteration == 7
        assert "ctx.scratch[batch]" in str(err.value)

    def test_disjoint_keys_pass(self):
        checker = self._checker()
        checker.begin_round()
        trainer, ctx = _Stub(), _Ctx()
        _, ctx_a = checker.views("a", trainer, ctx)
        ctx_a.scratch["left"] = 1
        _, ctx_b = checker.views("b", trainer, ctx)
        ctx_b.scratch["right"] = 2
        checker.finish_round(0)

    def test_wildcard_iteration_conflicts_with_any_key(self):
        checker = self._checker()
        checker.begin_round()
        trainer, ctx = _Stub(), _Ctx()
        _, ctx_a = checker.views("a", trainer, ctx)
        ctx_a.scratch["k"] = 1
        _, ctx_b = checker.views("b", trainer, ctx)
        list(ctx_b.scratch)  # whole-dict read
        with pytest.raises(EffectRaceError):
            checker.finish_round(0)

    def test_trainer_view_records_through_helper_methods(self):
        class Trainer:
            def __init__(self):
                self.counter = 0

            def bump(self):
                self.counter = self.counter + 1

        checker = self._checker()
        checker.begin_round()
        trainer, ctx = Trainer(), _Ctx()
        view, _ = checker.views("a", trainer, ctx)
        view.bump()
        log = checker.logs["a"]
        assert "self.counter" in log.reads
        assert "self.counter" in log.writes
        assert trainer.counter == 1

    def test_ordered_phases_may_conflict_freely(self):
        spec = _spec(_compute("a"), _compute("b"))  # b chains after a
        checker = EffectChecker(spec)
        checker.begin_round()
        trainer, ctx = _Stub(), _Ctx()
        _, ctx_a = checker.views("a", trainer, ctx)
        ctx_a.scratch["batch"] = 1
        _, ctx_b = checker.views("b", trainer, ctx)
        assert ctx_b.scratch["batch"] == 1
        checker.finish_round(0)


class _RacyTrainer:
    """Minimal engine trainer whose overlap spec races on a scratch key."""

    def round_spec(self):
        return RoundSpec(
            system="racy",
            phases=(
                ComputePhase("produce", run="_produce", synchronized=False),
                MasterPhase("consume", run="_consume", after=()),
            ),
        )

    def _produce(self, ctx):
        ctx.scratch["payload"] = 41
        return {0: 1.0}

    def _consume(self, ctx):
        return float(ctx.scratch.get("payload", 0))


def test_engine_check_effects_catches_race(cluster4):
    trainer = _RacyTrainer()
    engine = RoundEngine(trainer, cluster4, check_effects=True)
    with pytest.raises(EffectRaceError) as err:
        engine.run_round(0)
    assert "'produce'" in str(err.value) and "'consume'" in str(err.value)


def test_engine_without_flag_does_not_record(cluster4):
    trainer = _RacyTrainer()
    engine = RoundEngine(trainer, cluster4)
    assert engine.effects is None
    engine.run_round(0)  # the race goes unobserved, by request


# ----------------------------------------------------------------------
# static-vs-dynamic agreement across every engine trainer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def static_effects():
    """{class name: {phase-name tuple: {phase: (reads, writes)}}}"""
    analyzer = ProgramAnalyzer(discover_sources([str(SRC)]))
    inference = EffectInference(analyzer.index)
    out = {}
    for spec in extract_round_specs(analyzer.index):
        per_phase = {}
        for decl in spec.phases:
            effects = inference.phase_effects(spec, decl)
            per_phase[decl.name] = (set(effects.reads), set(effects.writes))
        out.setdefault(spec.cls.name, {})[spec.phase_names()] = per_phase
    return out


def _builders(cluster, data):
    def row(cls, fit_first=False, **kw):
        def build():
            trainer = cls(
                LogisticRegression(), SGD(0.1), cluster,
                config=RowSGDConfig(batch_size=64, iterations=2), **kw
            )
            trainer.load(data)
            if fit_first:
                trainer.fit()  # SSP seeds its version history in fit()
            return trainer
        return build

    def column():
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), cluster,
            config=ColumnSGDConfig(batch_size=64, iterations=2),
        )
        driver.load(data)
        return driver

    def mlp(cls, model):
        def build():
            trainer = cls(
                model, SGD(0.1), cluster, batch_size=64, iterations=2,
                eval_every=0, seed=3,
            )
            trainer.load(data)
            return trainer
        return build

    def local(cls, **kw):
        def build():
            trainer = cls(cluster, iterations=2, eval_every=0, seed=3, **kw)
            trainer.load(data)
            return trainer
        return build

    return {
        "ColumnSGDDriver": column,
        "MLlibTrainer": row(MLlibTrainer),
        "MLlibStarTrainer": row(MLlibStarTrainer),
        "ParameterServerTrainer": row(ParameterServerTrainer),
        "SparsePSTrainer": row(SparsePSTrainer),
        "StaleSyncPSTrainer": row(StaleSyncPSTrainer, fit_first=True,
                                  staleness=2),
        "CoCoATrainer": local(CoCoATrainer, lam=0.1, local_steps=10),
        "RidgeCDTrainer": local(RidgeCDTrainer, lam=0.1),
        "MLPColumnTrainer": mlp(MLPColumnTrainer, ColumnMLP(hidden=4)),
        "DeepMLPColumnTrainer": mlp(
            DeepMLPColumnTrainer, DeepColumnMLP([4, 3])
        ),
    }


TRAINER_NAMES = (
    "ColumnSGDDriver",
    "MLlibTrainer",
    "MLlibStarTrainer",
    "ParameterServerTrainer",
    "SparsePSTrainer",
    "StaleSyncPSTrainer",
    "CoCoATrainer",
    "RidgeCDTrainer",
    "MLPColumnTrainer",
    "DeepMLPColumnTrainer",
)


def test_static_extraction_covers_every_trainer(static_effects):
    assert set(TRAINER_NAMES) <= set(static_effects)


@pytest.mark.parametrize("name", TRAINER_NAMES)
def test_dynamic_effects_within_static_sets(
    name, cluster4, tiny_binary, static_effects
):
    """Every atom the recorder observes is in the inferred effect sets."""
    trainer = _builders(cluster4, tiny_binary)[name]()
    spec = trainer.round_spec()
    engine = RoundEngine(
        trainer,
        cluster4,
        spec=spec,
        straggler=getattr(trainer, "straggler", None),
        check_effects=True,
    )
    engine.run_round(0)
    runtime_names = tuple(p.name for p in spec.phases)
    assert runtime_names in static_effects[name], (
        "no static spec reconstruction matches the runtime phases"
    )
    per_phase = static_effects[name][runtime_names]
    for phase, log in engine.effects.logs.items():
        reads, writes = per_phase[phase]
        missing_reads = log.reads - reads - writes
        missing_writes = log.writes - writes
        assert not missing_reads, (
            "{}/{}: dynamic reads missing statically: {}".format(
                name, phase, sorted(missing_reads)
            )
        )
        assert not missing_writes, (
            "{}/{}: dynamic writes missing statically: {}".format(
                name, phase, sorted(missing_writes)
            )
        )


def test_driver_overlap_runs_clean_under_check_effects(cluster4, tiny_binary):
    """The shipped overlap spec passes the runtime race checker end-to-end."""
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.1), cluster4,
        config=ColumnSGDConfig(
            batch_size=64, iterations=3, eval_every=0, check_effects=True
        ),
    )
    driver.load(tiny_binary)
    driver.fit()
    assert "prefetch_batch" in driver.last_phase_seconds


def test_overlap_and_sequential_numerics_are_identical(tiny_binary):
    from repro.sim import CLUSTER1, SimulatedCluster
    import numpy as np

    params = {}
    for overlap in (True, False):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), cluster,
            config=ColumnSGDConfig(
                batch_size=64, iterations=4, eval_every=0, overlap=overlap
            ),
        )
        driver.load(tiny_binary)
        result = driver.fit()
        params[overlap] = result.final_params
    assert np.array_equal(params[True], params[False])
