"""The static effect analyzer behind lint rules R012-R014.

Covers spec reconstruction (composed tuples, bail-on-dynamic),
interprocedural effect inference with witness chains, and the
no-findings guarantee on the repository's own tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintEngine, ProgramAnalyzer, discover_sources
from repro.lint.effects import (
    EffectInference,
    extract_round_specs,
    infer_spec_effects,
)

SRC = Path(__file__).resolve().parent.parent / "src"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures" / "program"


def analyze(source: str, name: str = "fixture.py") -> ProgramAnalyzer:
    return ProgramAnalyzer([(name, source)])


def one_spec(source: str):
    analyzer = analyze(source)
    specs = extract_round_specs(analyzer.index)
    assert len(specs) == 1
    return analyzer, specs[0]


# ----------------------------------------------------------------------
# spec reconstruction
# ----------------------------------------------------------------------
class TestSpecReconstruction:
    def test_composed_tuple_with_helper_call(self):
        _, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_a", synchronized=False),)
            + tuple(self._comm())
            + (MasterPhase("z", run="_z"),),
        )

    def _comm(self):
        return (
            CommPhase("push", kind=K.PUSH, pattern="gather", sizes="_s"),
        )
"""
        )
        assert spec.phase_names() == ("a", "push", "z")

    def test_dynamic_phases_bail_silently(self):
        analyzer = analyze(
            """
class Trainer:
    def round_spec(self):
        phases = [ComputePhase(n, run="_a", synchronized=False)
                  for n in self.names]
        return RoundSpec(system="x", phases=tuple(phases))
"""
        )
        assert extract_round_specs(analyzer.index) == []

    def test_dynamic_after_bails(self):
        analyzer = analyze(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(
                ComputePhase("a", run="_a", synchronized=False),
                ComputePhase("b", run="_b", synchronized=False,
                             after=self._deps()),
            ),
        )
"""
        )
        assert extract_round_specs(analyzer.index) == []

    def test_invalid_specs_are_skipped(self):
        # forward/unknown dependency: the runtime ctor would reject it,
        # so the rules must not reason about it either
        analyzer = analyze(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(
                ComputePhase("a", run="_a", synchronized=False,
                             after=("zz",)),
            ),
        )
"""
        )
        assert extract_round_specs(analyzer.index) == []

    def test_local_name_binding_resolves(self):
        _, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        phases = (
            ComputePhase("a", run="_a", synchronized=False),
            MasterPhase("b", run="_b"),
        )
        return RoundSpec(system="x", phases=phases)
"""
        )
        assert spec.phase_names() == ("a", "b")


# ----------------------------------------------------------------------
# effect inference
# ----------------------------------------------------------------------
class TestEffectInference:
    def test_transitive_write_carries_witness_chain(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=False),),
        )

    def _phase_a(self, ctx):
        self._helper(ctx)
        return {}

    def _helper(self, ctx):
        ctx.scratch["stats"] = 1
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        assert "ctx.scratch[stats]" in effects.writes
        assert effects.writes["ctx.scratch[stats]"] == "_phase_a -> _helper"

    def test_rooted_method_call_with_mutator_is_a_write(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=False),),
        )

    def _phase_a(self, ctx):
        self.pending.append(ctx.t)
        return {}
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        assert "self.pending" in effects.writes
        assert "ctx.t" in effects.reads

    def test_loop_alias_collapses_to_root_atom(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=False),),
        )

    def _phase_a(self, ctx):
        for worker in self._workers:
            worker.compute(ctx.t)
        return {}

class Worker:
    def compute(self, t):
        self.cache = t
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        # worker is rooted at self._workers; Worker.compute mutates its
        # receiver, so the container atom becomes a write
        assert "self._workers" in effects.writes

    def test_pure_rooted_call_stays_a_read(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=False),),
        )

    def _phase_a(self, ctx):
        return {0: self.cost_model.estimate(ctx.t)}

class CostModel:
    def estimate(self, t):
        return t * 2.0
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        assert "self.cost_model" in effects.reads
        assert "self.cost_model" not in effects.writes

    def test_synchronized_compute_gains_sync_policy_effects(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=True),),
        )

    def _phase_a(self, ctx):
        return {}
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        assert "ctx.chosen" in effects.writes
        assert "ctx.cluster" in effects.reads

    def test_scratch_variable_key_widens_to_wildcard(self):
        analyzer, spec = one_spec(
            """
class Trainer:
    def round_spec(self):
        return RoundSpec(
            system="x",
            phases=(ComputePhase("a", run="_phase_a", synchronized=False),),
        )

    def _phase_a(self, ctx):
        for key in self.keys:
            ctx.scratch[key] = 0
        return {}
"""
        )
        effects = infer_spec_effects(analyzer.index, spec)["a"]
        assert "ctx.scratch[*]" in effects.writes


# ----------------------------------------------------------------------
# rule behaviour beyond the fixture counts
# ----------------------------------------------------------------------
def test_r012_witness_names_the_call_chain():
    findings = LintEngine(select=["R012"]).lint_paths(
        [str(FIXTURES / "r012_trigger.py")]
    )
    race = [f for f in findings if "ctx.scratch[batch]" in f.message]
    assert race, [f.message for f in findings]
    assert "_phase_produce -> _stash" in race[0].message


def test_r013_message_lists_both_drift_directions():
    findings = LintEngine(select=["R013"]).lint_paths(
        [str(FIXTURES / "r013_trigger.py")]
    )
    assert len(findings) == 1
    message = findings[0].message
    assert "undeclared reads ['ctx.budget']" in message
    assert "undeclared writes ['self.total']" in message
    assert "declared-but-uninferred reads ['self.stale_input']" in message


def test_r014_names_the_shared_kind():
    findings = LintEngine(select=["R014"]).lint_paths(
        [str(FIXTURES / "r014_trigger.py")]
    )
    assert len(findings) == 1
    assert "STATS_PUSH" in findings[0].message
    assert "'push_a'" in findings[0].message


def test_rules_find_nothing_in_the_repository_tree():
    """The acceptance gate: the swept src tree is race-free."""
    findings = LintEngine(select=["R012", "R013", "R014"]).lint_paths([str(SRC)])
    assert findings == []


def test_driver_overlap_spec_is_reconstructed_with_dag():
    analyzer = ProgramAnalyzer(discover_sources([str(SRC)]))
    specs = [
        s for s in extract_round_specs(analyzer.index)
        if s.cls.name == "ColumnSGDDriver"
    ]
    names = {s.phase_names() for s in specs}
    assert (
        "compute_statistics", "gather", "prefetch_batch", "reduce",
        "broadcast", "update_model",
    ) in names
    overlapped = next(s for s in specs if len(s.phases) == 6)
    prefetch = next(p for p in overlapped.phases if p.name == "prefetch_batch")
    assert prefetch.after == ()
    assert prefetch.declared_writes == ("ctx.scratch[prefetch_nnz]",)
    inference = EffectInference(analyzer.index)
    effects = inference.phase_effects(overlapped, prefetch)
    assert set(effects.writes) == {"ctx.scratch[prefetch_nnz]"}
