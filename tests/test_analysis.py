"""Validation of the analytic cost model (Table I and the predictors).

The key check: the simulator's *measured* communication bytes match the
Table I formulas — the formulas aren't decorative, they describe the
implementation.
"""

import pytest

from repro.baselines import MLlibTrainer, RowSGDConfig
from repro.core import (
    columnsgd_overheads,
    predict_iteration_time,
    rowsgd_overheads,
    train_columnsgd,
)
from repro.datasets import load_profile
from repro.models import LogisticRegression
from repro.net import MessageKind, NetworkModel
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from repro.storage.serialization import OBJECT_OVERHEAD_BYTES


class TestTable1Formulas:
    def test_columnsgd_master_comm_is_2kb(self):
        est = columnsgd_overheads(m=10**6, batch_size=1000, n_workers=8,
                                  sparsity=0.999, data_elements=1e8)
        assert est.master_communication == 2 * 8 * 1000
        assert est.worker_communication == 2 * 1000

    def test_columnsgd_master_memory_is_b(self):
        est = columnsgd_overheads(m=10**6, batch_size=1000, n_workers=8,
                                  sparsity=0.999, data_elements=1e8)
        assert est.master_memory == 1000

    def test_columnsgd_worker_memory(self):
        est = columnsgd_overheads(m=80, batch_size=10, n_workers=8,
                                  sparsity=0.9, data_elements=800)
        assert est.worker_memory == pytest.approx(800 / 8 + 2 * 10 + 80 / 8)

    def test_rowsgd_phi_factors(self):
        # rho=0.5, B/K=2 -> phi1 = 1 - 0.25 = 0.75
        est = rowsgd_overheads(m=100, batch_size=8, n_workers=4,
                               sparsity=0.5, data_elements=1000)
        phi1 = 1 - 0.5 ** 2
        phi2 = 1 - 0.5 ** 8
        assert est.worker_communication == pytest.approx(2 * 100 * phi1)
        assert est.master_communication == pytest.approx(2 * 4 * 100 * phi1)
        assert est.master_memory == pytest.approx(100 + 100 * phi2)

    def test_dense_data_phi_is_one(self):
        est = rowsgd_overheads(m=100, batch_size=8, n_workers=4,
                               sparsity=0.0, data_elements=1000)
        assert est.worker_communication == pytest.approx(200)

    def test_as_row_renders(self):
        est = columnsgd_overheads(m=100, batch_size=8, n_workers=4,
                                  sparsity=0.5, data_elements=1000)
        assert est.as_row()[0] == "ColumnSGD"

    def test_validation(self):
        with pytest.raises(ValueError):
            rowsgd_overheads(m=0, batch_size=1, n_workers=1, sparsity=0.5,
                             data_elements=1)
        with pytest.raises(ValueError):
            columnsgd_overheads(m=1, batch_size=1, n_workers=1, sparsity=1.5,
                                data_elements=1)


class TestMeasuredBytesMatchFormulas:
    def test_columnsgd_statistics_bytes(self, tiny_binary):
        """Measured gather+broadcast bytes == 2*K*B values (+ headers)."""
        K, B = 4, 32
        cluster = SimulatedCluster(CLUSTER1.with_workers(K))
        cluster.network.reset_counters()
        train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.5), cluster,
            batch_size=B, iterations=1, eval_every=0, block_size=64,
        )
        pushed = cluster.network.bytes_of_kind(MessageKind.STATISTICS_PUSH)
        bcast = cluster.network.bytes_of_kind(MessageKind.STATISTICS_BCAST)
        expected_each = K * (B * 8 + OBJECT_OVERHEAD_BYTES)
        assert pushed == expected_each
        assert bcast == expected_each

    def test_mllib_model_bytes(self, tiny_binary):
        """Measured pull+push == 2*K*m dense values (+ headers)."""
        K = 4
        cluster = SimulatedCluster(CLUSTER1.with_workers(K))
        trainer = MLlibTrainer(
            LogisticRegression(), SGD(0.5), cluster,
            config=RowSGDConfig(batch_size=32, iterations=1, eval_every=0),
        )
        trainer.load(tiny_binary)
        cluster.network.reset_counters()
        trainer.fit()
        m = tiny_binary.n_features
        expected_each = K * (m * 8 + OBJECT_OVERHEAD_BYTES)
        assert cluster.network.bytes_of_kind(MessageKind.MODEL_PULL) == expected_each
        assert cluster.network.bytes_of_kind(MessageKind.GRADIENT_PUSH) == expected_each


class TestPredictor:
    NET = NetworkModel(bandwidth=1e9 / 8, latency=0.5e-3)

    def predict(self, system, **kw):
        defaults = dict(m=54_686_452, batch_size=1000, n_workers=8,
                        avg_nnz_per_row=11.0, network=self.NET)
        defaults.update(kw)
        return predict_iteration_time(system, **defaults)

    def test_table4_kdd12_shape(self):
        """Paper Table IV, kdd12: 55.8 / 3.81 / 0.37 / 0.06 seconds."""
        mllib = self.predict("mllib")
        petuum = self.predict("petuum")
        mxnet = self.predict("mxnet")
        column = self.predict("columnsgd")
        assert 30 < mllib < 90
        assert 2 < petuum < 8
        assert 0.1 < mxnet < 1.0
        assert 0.03 < column < 0.12
        assert mllib > petuum > mxnet > column

    def test_avazu_mxnet_beats_columnsgd(self):
        """Paper Table IV, avazu: MXNet is ~3x faster than ColumnSGD."""
        mxnet = self.predict("mxnet", m=1_000_000, avg_nnz_per_row=15.0)
        column = self.predict("columnsgd", m=1_000_000, avg_nnz_per_row=15.0)
        assert mxnet < column

    def test_columnsgd_flat_in_m(self):
        """Fig 10: ColumnSGD per-iteration time independent of m."""
        small = self.predict("columnsgd", m=10)
        huge = self.predict("columnsgd", m=10**9)
        assert huge == pytest.approx(small, rel=1e-6)

    def test_mllib_linear_in_m(self):
        t1 = self.predict("mllib", m=10**6)
        t2 = self.predict("mllib", m=10**7)
        assert t2 > 5 * t1

    def test_fm_widens_columnsgd_statistics(self):
        lr = self.predict("columnsgd")
        fm = self.predict("columnsgd", statistics_width=11, params_per_feature=11)
        assert fm > lr

    def test_mxnet_fm_grows_with_factors(self):
        """Table V: MXNet FM cost grows with F; ColumnSGD stays cheap."""
        f10 = self.predict("mxnet", statistics_width=11, params_per_feature=11)
        f50 = self.predict("mxnet", statistics_width=51, params_per_feature=51)
        column = self.predict("columnsgd", statistics_width=11, params_per_feature=11)
        assert f50 > f10 > column

    def test_mllib_star_between(self):
        star = self.predict("mllib*")
        mllib = self.predict("mllib")
        assert star < mllib

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            self.predict("ray")


class TestPaperScaleTable4:
    """Full Table IV regeneration at paper scale (analytic path)."""

    def test_speedups_in_paper_ballpark(self):
        net = NetworkModel(bandwidth=1e9 / 8, latency=0.5e-3)
        rows = {}
        for name in ("avazu", "kddb", "kdd12"):
            profile = load_profile(name)
            args = dict(
                m=profile.paper_features,
                batch_size=1000,
                n_workers=8,
                avg_nnz_per_row=profile.avg_nnz_per_row,
                network=net,
            )
            rows[name] = {
                s: predict_iteration_time(s, **args)
                for s in ("mllib", "petuum", "mxnet", "columnsgd")
            }
        # paper: 24/4/0.3 (avazu), 233/28/5 (kddb), 930/63/6 (kdd12)
        kdd12 = rows["kdd12"]
        assert 300 < kdd12["mllib"] / kdd12["columnsgd"] < 3000
        assert 20 < kdd12["petuum"] / kdd12["columnsgd"] < 200
        assert 2 < kdd12["mxnet"] / kdd12["columnsgd"] < 20
        # speedup grows with model size, as in the paper
        assert (
            rows["avazu"]["mllib"] / rows["avazu"]["columnsgd"]
            < rows["kddb"]["mllib"] / rows["kddb"]["columnsgd"]
            < rows["kdd12"]["mllib"] / rows["kdd12"]["columnsgd"]
        )
