"""The paper's decomposition identities, for every model x scheme.

These are the invariants that make ColumnSGD correct (Section II-C):

1. statistics additivity — summing per-shard partial statistics equals
   full-data statistics;
2. gradient locality — the full-batch gradient restricted to a partition
   equals the partition's gradient-from-complete-statistics;
3. loss locality — complete statistics suffice to evaluate the loss.
"""

import numpy as np
import pytest

from repro.datasets import make_classification, make_multiclass
from repro.models import (
    FactorizationMachine,
    HuberRegression,
    LeastSquares,
    LinearSVM,
    LogisticRegression,
    MultinomialLogisticRegression,
    SmoothSVM,
)
from repro.partition import make_assignment


def all_models():
    return [
        LogisticRegression(),
        LinearSVM(),
        LeastSquares(),
        SmoothSVM(),
        HuberRegression(delta=1.0),
        MultinomialLogisticRegression(n_classes=3),
        FactorizationMachine(n_factors=3),
    ]


def data_for(model, seed=0):
    if model.name == "mlr":
        return make_multiclass(60, 24, n_classes=3, nnz_per_row=6, seed=seed)
    return make_classification(
        60, 24, nnz_per_row=6, binary_features=False, seed=seed
    )


def params_for(model, n_features, seed=0):
    rng = np.random.default_rng(seed)
    params = model.init_params(n_features, seed=seed).astype(np.float64)
    params += rng.normal(size=params.shape) * 0.3
    return params


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.name)
@pytest.mark.parametrize("scheme", ["round_robin", "range", "hash"])
@pytest.mark.parametrize("n_workers", [2, 3, 5])
class TestDecomposition:
    def test_statistics_additive_across_shards(self, model, scheme, n_workers):
        data = data_for(model)
        params = params_for(model, data.n_features)
        assignment = make_assignment(scheme, data.n_features, n_workers)

        full = model.compute_statistics(data.features, params)
        partial_sum = None
        for k in range(n_workers):
            cols = assignment.columns_of(k)
            shard = data.features.select_columns(cols)
            part = model.compute_statistics(shard, params[cols])
            partial_sum = part if partial_sum is None else partial_sum + part
        assert np.allclose(full, partial_sum, atol=1e-10)

    def test_gradient_recoverable_per_partition(self, model, scheme, n_workers):
        data = data_for(model)
        params = params_for(model, data.n_features)
        assignment = make_assignment(scheme, data.n_features, n_workers)

        full_stats = model.compute_statistics(data.features, params)
        full_grad = model.gradient_from_statistics(
            data.features, data.labels, full_stats, params
        )
        for k in range(n_workers):
            cols = assignment.columns_of(k)
            shard = data.features.select_columns(cols)
            local_grad = model.gradient_from_statistics(
                shard, data.labels, full_stats, params[cols]
            )
            assert np.allclose(full_grad[cols], local_grad, atol=1e-10)


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.name)
class TestLossFromStatistics:
    def test_loss_equals_direct_evaluation(self, model):
        data = data_for(model, seed=1)
        params = params_for(model, data.n_features, seed=1)
        stats = model.compute_statistics(data.features, params)
        from_stats = model.loss_from_statistics(stats, data.labels)
        direct = model.loss(data.features, data.labels, params)
        assert from_stats == pytest.approx(direct - model.regularizer.penalty(params))

    def test_empty_batch_loss_is_zero(self, model):
        data = data_for(model)
        params = params_for(model, data.n_features)
        stats = np.zeros((0, model.statistics_width))
        assert model.loss_from_statistics(stats, np.zeros(0)) == 0.0

    def test_predictions_shape(self, model):
        data = data_for(model, seed=2)
        params = params_for(model, data.n_features, seed=2)
        preds = model.predict(data.features, params)
        assert preds.shape == (data.n_rows,)
