"""Tests for repro.preprocess."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.preprocess import binarize, hash_features, normalize_rows, scale_features


class TestHashFeatures:
    def test_dimensions_and_labels(self, tiny_binary):
        hashed = hash_features(tiny_binary, n_buckets=64, seed=1)
        assert hashed.n_features == 64
        assert hashed.n_rows == tiny_binary.n_rows
        assert np.array_equal(hashed.labels, tiny_binary.labels)

    def test_deterministic(self, tiny_binary):
        a = hash_features(tiny_binary, 64, seed=1)
        b = hash_features(tiny_binary, 64, seed=1)
        assert a.features == b.features

    def test_seed_changes_mapping(self, tiny_binary):
        a = hash_features(tiny_binary, 64, seed=1)
        b = hash_features(tiny_binary, 64, seed=2)
        assert a.features != b.features

    def test_row_l1_mass_preserved_unsigned(self, tiny_binary):
        """Without sign hashing, per-row total value is preserved."""
        hashed = hash_features(tiny_binary, 64, signed=False)
        for i in range(0, tiny_binary.n_rows, 29):
            original = tiny_binary.features.row(i).values.sum()
            assert hashed.features.row(i).values.sum() == pytest.approx(original)

    def test_indices_within_buckets(self, tiny_binary):
        hashed = hash_features(tiny_binary, 32)
        if hashed.features.nnz:
            assert hashed.features.indices.max() < 32

    def test_trainable_after_hashing(self):
        """End-to-end: hash a wide dataset down and train on it."""
        from repro.core import train_columnsgd
        from repro.models import LogisticRegression
        from repro.optim import SGD
        from repro.sim import CLUSTER1, SimulatedCluster

        data = make_classification(1500, 50_000, nnz_per_row=10, seed=3)
        hashed = hash_features(data, n_buckets=4096, seed=3)
        result = train_columnsgd(
            hashed, LogisticRegression(), SGD(1.0),
            SimulatedCluster(CLUSTER1.with_workers(4)),
            batch_size=200, iterations=60, eval_every=60, block_size=256,
        )
        assert result.final_loss() < 0.95 * np.log(2)

    def test_rejects_bad_buckets(self, tiny_binary):
        with pytest.raises(ValueError):
            hash_features(tiny_binary, 0)


class TestNormalizeRows:
    def test_unit_norms(self, tiny_binary):
        normalized = normalize_rows(tiny_binary)
        for i in range(0, tiny_binary.n_rows, 37):
            row = normalized.features.row(i)
            if row.nnz:
                assert np.sqrt(row.norm_sq()) == pytest.approx(1.0)

    def test_preserves_sparsity_pattern(self, tiny_binary):
        normalized = normalize_rows(tiny_binary)
        assert np.array_equal(
            normalized.features.indices, tiny_binary.features.indices
        )

    def test_original_untouched(self, tiny_binary):
        before = tiny_binary.features.data.copy()
        normalize_rows(tiny_binary)
        assert np.array_equal(tiny_binary.features.data, before)


class TestBinarize:
    def test_all_ones(self):
        data = make_classification(50, 30, binary_features=False, seed=5)
        assert np.all(binarize(data).features.data == 1.0)

    def test_pattern_preserved(self):
        data = make_classification(50, 30, binary_features=False, seed=5)
        assert np.array_equal(
            binarize(data).features.indices, data.features.indices
        )


class TestScaleFeatures:
    def test_max_abs_is_one(self):
        data = make_classification(80, 40, binary_features=False, seed=6)
        scaled = scale_features(data)
        max_abs = np.zeros(40)
        np.maximum.at(max_abs, scaled.features.indices, np.abs(scaled.features.data))
        present = max_abs > 0
        assert np.allclose(max_abs[present], 1.0)

    def test_idempotent(self):
        data = make_classification(80, 40, binary_features=False, seed=6)
        once = scale_features(data)
        twice = scale_features(once)
        assert np.allclose(once.features.data, twice.features.data)
