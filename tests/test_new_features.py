"""Tests for the feature batch: CSV traces, held-out eval tracking,
kill_worker (footnote 6), k-fold CV, warmup schedule, phase breakdown."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver, TrainingResult
from repro.core.results import IterationRecord
from repro.errors import StatisticsRecoveryError
from repro.metrics import k_fold, train_test_split
from repro.models import LogisticRegression
from repro.optim import SGD, WarmupSchedule
from repro.sim import CLUSTER1, SimulatedCluster


class TestCsvTrace:
    def make_result(self):
        result = TrainingResult(system="ColumnSGD", model="lr", dataset="d",
                                batch_size=10, n_workers=2)
        result.add(IterationRecord(-1, 0.0, 0.0, 0.69, 0))
        result.add(IterationRecord(0, 0.05, 0.05, None, 128))
        result.add(IterationRecord(1, 0.10, 0.05, 0.61, 128, eval_loss=0.65))
        return result

    def test_roundtrip(self, tmp_path):
        original = self.make_result()
        path = tmp_path / "trace.csv"
        original.to_csv(path)
        loaded = TrainingResult.from_csv(path)
        assert loaded.system == "ColumnSGD"
        assert loaded.batch_size == 10
        assert loaded.n_iterations == 3
        assert loaded.records[1].loss is None
        assert loaded.records[2].loss == pytest.approx(0.61)
        assert loaded.records[2].eval_loss == pytest.approx(0.65)
        assert loaded.total_bytes() == 256

    def test_csv_from_real_run(self, tiny_binary, tmp_path):
        from repro.core import train_columnsgd

        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.5), cluster,
            batch_size=32, iterations=6, eval_every=3, block_size=64,
        )
        path = tmp_path / "run.csv"
        result.to_csv(path)
        loaded = TrainingResult.from_csv(path)
        assert loaded.final_loss() == pytest.approx(result.final_loss())
        assert loaded.total_sim_time == pytest.approx(result.total_sim_time)


class TestHeldOutEval:
    def test_eval_losses_tracked(self, small_binary):
        train, test = train_test_split(small_binary, test_fraction=0.3, seed=1)
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(1.0), cluster,
            config=ColumnSGDConfig(batch_size=100, iterations=30,
                                   eval_every=10, block_size=256),
        )
        driver.load(train)
        result = driver.fit(eval_dataset=test)
        evals = result.eval_losses()
        assert len(evals) == len(result.losses())
        # held-out loss also improves on this easy problem
        assert evals[-1][2] < evals[0][2]

    def test_no_eval_dataset_means_no_eval_losses(self, tiny_binary):
        from repro.core import train_columnsgd

        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.5), cluster,
            batch_size=32, iterations=4, eval_every=2, block_size=64,
        )
        assert result.eval_losses() == []


class TestKillWorker:
    def make_driver(self, data, backup):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=32, iterations=6, eval_every=0,
                                 seed=2, block_size=64, backup=backup)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
        driver.load(data)
        return driver

    def test_kill_with_backup_stays_exact(self, tiny_binary):
        """Footnote 6: kill a permanent straggler; replicas carry on and
        the trajectory is unchanged."""
        clean = self.make_driver(tiny_binary, backup=1)
        clean_result = clean.fit()
        killed = self.make_driver(tiny_binary, backup=1)
        killed.kill_worker(1)
        killed_result = killed.fit()
        assert np.allclose(
            clean_result.final_params, killed_result.final_params, atol=1e-12
        )

    def test_kill_without_backup_is_unrecoverable(self, tiny_binary):
        driver = self.make_driver(tiny_binary, backup=0)
        driver.kill_worker(1)
        with pytest.raises(StatisticsRecoveryError):
            driver.fit()

    def test_kill_validates_id(self, tiny_binary):
        driver = self.make_driver(tiny_binary, backup=0)
        with pytest.raises(ValueError):
            driver.kill_worker(9)


class TestKFold:
    def test_folds_cover_everything_once(self, tiny_binary):
        seen = 0
        for train, val in k_fold(tiny_binary, k=5, seed=3):
            assert train.n_rows + val.n_rows == tiny_binary.n_rows
            seen += val.n_rows
        assert seen == tiny_binary.n_rows

    def test_fold_sizes_balanced(self, tiny_binary):
        sizes = [val.n_rows for _, val in k_fold(tiny_binary, k=7, seed=3)]
        assert max(sizes) - min(sizes) <= 1

    def test_validation_rows_disjoint(self, tiny_binary):
        # without shuffle, folds are contiguous ranges -> verify label
        # sequences reassemble the original
        vals = [val for _, val in k_fold(tiny_binary, k=4, shuffle=False)]
        rebuilt = np.concatenate([v.labels for v in vals])
        assert np.array_equal(rebuilt, tiny_binary.labels)

    def test_validation(self, tiny_binary):
        with pytest.raises(ValueError):
            list(k_fold(tiny_binary, k=1))
        with pytest.raises(ValueError):
            list(k_fold(tiny_binary.slice(0, 3), k=5))


class TestWarmupSchedule:
    def test_ramp(self):
        sched = WarmupSchedule(10, start_factor=0.2)
        assert sched.factor(0) == pytest.approx(0.2)
        assert sched.factor(5) == pytest.approx(0.6)
        assert sched.factor(10) == 1.0
        assert sched.factor(100) == 1.0

    def test_composes_with_decay(self):
        from repro.optim import StepDecaySchedule

        sched = WarmupSchedule(4, after=StepDecaySchedule(step_size=10, gamma=0.5))
        assert sched.factor(4) == 1.0
        assert sched.factor(14) == 0.5  # 10 post-warmup iterations

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupSchedule(0)
        with pytest.raises(ValueError):
            WarmupSchedule(5, start_factor=0.0)

    def test_usable_in_sgd(self, tiny_binary):
        from repro.core import train_columnsgd

        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(),
            SGD(1.0, schedule=WarmupSchedule(5)), cluster,
            batch_size=32, iterations=10, eval_every=10, block_size=64,
        )
        assert result.final_loss() < np.log(2)


class TestPhaseBreakdown:
    def test_phases_sum_to_duration(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster,
            config=ColumnSGDConfig(batch_size=32, iterations=1, eval_every=0,
                                   block_size=64, overlap=False),
        )
        driver.load(tiny_binary)
        duration = driver.run_round(0).duration
        phases = driver.last_phase_seconds
        assert set(phases) == {
            "compute_statistics", "gather", "reduce", "broadcast", "update_model"
        }
        assert sum(phases.values()) == pytest.approx(duration)

    def test_overlap_duration_is_critical_path(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster,
            config=ColumnSGDConfig(batch_size=32, iterations=1, eval_every=0,
                                   block_size=64),
        )
        driver.load(tiny_binary)
        duration = driver.run_round(0).duration
        phases = driver.last_phase_seconds
        assert "prefetch_batch" in phases
        critical = (
            phases["compute_statistics"]
            + max(phases["gather"], phases["reduce"])
            + phases["broadcast"]
            + phases["update_model"]
        )
        expected = max(critical, phases["prefetch_batch"]
                       + phases["update_model"])
        assert duration == pytest.approx(expected)
        assert duration < sum(phases.values())
