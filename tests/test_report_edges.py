"""Edge cases of the experiment report renderers."""

import pytest

from repro.core.results import IterationRecord, TrainingResult
from repro.experiments import iteration_time_table, loss_series
from repro.experiments.report import _find_key


def result_with(system, losses, per_iter=0.1):
    result = TrainingResult(system=system, model="lr", dataset="d",
                            batch_size=8, n_workers=2)
    t = 0.0
    for i, loss in enumerate(losses):
        t += per_iter
        result.add(IterationRecord(i, t, per_iter, loss, 10))
    return result


class TestReportEdges:
    def test_iteration_table_without_reference(self):
        """No columnsgd entry: speedup column degrades to dashes."""
        table = iteration_time_table({"mllib": result_with("MLlib", [0.5])})
        assert "MLlib" in table
        assert "x" not in table.splitlines()[-1]

    def test_find_key_case_insensitive(self):
        results = {"ColumnSGD": None}
        assert _find_key(results, "columnsgd") == "ColumnSGD"
        assert _find_key(results, "mxnet") is None

    def test_loss_series_empty(self):
        result = result_with("X", [None, None])
        assert loss_series(result) == ""

    def test_loss_series_single_point(self):
        result = result_with("X", [0.5])
        assert loss_series(result).count("(") == 1

    def test_zero_duration_result(self):
        result = result_with("X", [0.5], per_iter=0.0)
        table = iteration_time_table({"columnsgd": result})
        assert "0.0000" in table
