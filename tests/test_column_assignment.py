"""Unit tests for column assignment schemes."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import (
    HashAssignment,
    RangeAssignment,
    RoundRobinAssignment,
    make_assignment,
)


ALL_SCHEMES = ["round_robin", "range", "hash"]


class TestInvariants:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("m,k", [(10, 3), (100, 8), (17, 17), (64, 1)])
    def test_covers_every_column_once(self, scheme, m, k):
        asg = make_assignment(scheme, m, k)
        seen = np.concatenate([asg.columns_of(w) for w in range(k)])
        assert sorted(seen.tolist()) == list(range(m))

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_worker_of_consistent_with_columns_of(self, scheme):
        asg = make_assignment(scheme, 50, 4)
        for w in range(4):
            assert np.all(asg.worker_of(asg.columns_of(w)) == w)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_columns_sorted(self, scheme):
        asg = make_assignment(scheme, 40, 3)
        for w in range(3):
            cols = asg.columns_of(w)
            assert np.all(np.diff(cols) > 0) or cols.size <= 1

    @pytest.mark.parametrize("scheme", ["round_robin", "range"])
    def test_balance(self, scheme):
        asg = make_assignment(scheme, 1000, 8)
        assert asg.imbalance() < 1.01

    def test_local_dims_sum(self):
        asg = make_assignment("hash", 97, 5)
        assert sum(asg.local_dims()) == 97


class TestSchemes:
    def test_round_robin_layout(self):
        asg = RoundRobinAssignment(10, 3)
        assert asg.columns_of(0).tolist() == [0, 3, 6, 9]
        assert asg.columns_of(2).tolist() == [2, 5, 8]

    def test_range_layout(self):
        asg = RangeAssignment(10, 2)
        assert asg.columns_of(0).tolist() == list(range(5))
        assert asg.columns_of(1).tolist() == list(range(5, 10))

    def test_hash_deterministic(self):
        a = HashAssignment(100, 4)
        b = HashAssignment(100, 4)
        for w in range(4):
            assert np.array_equal(a.columns_of(w), b.columns_of(w))

    def test_more_workers_than_columns(self):
        with pytest.raises(PartitionError):
            RoundRobinAssignment(3, 5)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_assignment("zigzag", 10, 2)

    def test_repr(self):
        assert "m=10" in repr(RoundRobinAssignment(10, 2))
