"""Unit tests for the lossy network layer (repro.net.faults)."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    FaultPlan,
    LinkFaults,
    LossyNetworkModel,
    Message,
    MessageKind,
    NetworkModel,
)


class TestLinkFaults:
    def test_defaults_are_lossless(self):
        faults = LinkFaults()
        assert not faults.any()
        assert faults.loss == 0.0

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaults(duplicate=-0.1)

    def test_rejects_certain_loss(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop=0.6, corrupt=0.5)

    def test_loss_combines_drop_and_corrupt(self):
        assert LinkFaults(drop=0.1, corrupt=0.2).loss == pytest.approx(0.3)


class TestFaultPlan:
    def test_none_has_no_faults(self):
        assert not FaultPlan.none().any_faults()

    def test_link_override_wins(self):
        loud = LinkFaults(drop=0.5)
        plan = FaultPlan(links={(0, 1): loud})
        assert plan.for_link(0, 1) is loud
        assert plan.for_link(1, 0) == LinkFaults()
        assert plan.any_faults()

    def test_link_seed_is_directional_and_deterministic(self):
        plan = FaultPlan(seed=7)
        assert plan.link_seed(0, 1) != plan.link_seed(1, 0)
        assert plan.link_seed(0, 1) == FaultPlan(seed=7).link_seed(0, 1)
        assert plan.link_seed(0, 1) != FaultPlan(seed=8).link_seed(0, 1)

    def test_master_link_seed_valid(self):
        # Message.MASTER = -1 is shifted into the non-negative range
        plan = FaultPlan(seed=3)
        assert plan.link_seed(Message.MASTER, 0) >= 0

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(max_attempts=0)


def _flood(net, n=400, size=1000):
    """Send n identical worker->master messages; return total seconds."""
    total = 0.0
    for _ in range(n):
        total += net.send(
            Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, size)
        )
        total += net.consume_extra_seconds()
    return total


class TestLossyNetworkModel:
    def test_base_time_unchanged(self):
        """send() returns the lossless time; fault costs accrue separately."""
        plan = FaultPlan(default=LinkFaults(drop=0.5), seed=1)
        lossy = LossyNetworkModel(fault_plan=plan, bandwidth=1e6, latency=0.01)
        clean = NetworkModel(bandwidth=1e6, latency=0.01)
        msg = Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 1000)
        assert lossy.send(msg) == clean.send(msg)

    def test_deterministic_given_seed(self):
        plan = FaultPlan(default=LinkFaults(drop=0.2, duplicate=0.1), seed=5)
        a = LossyNetworkModel(fault_plan=plan)
        b = LossyNetworkModel(fault_plan=plan)
        _flood(a)
        _flood(b)
        assert a.dropped == b.dropped
        assert a.duplicated == b.duplicated
        assert a.retry_bytes() == b.retry_bytes()
        assert a.snapshot() == b.snapshot()

    def test_drops_trigger_retry_accounting(self):
        plan = FaultPlan(default=LinkFaults(drop=0.3), seed=2)
        net = LossyNetworkModel(fault_plan=plan)
        _flood(net)
        assert net.dropped > 0
        # every retransmitted copy is logged under MessageKind.RETRY,
        # keyed by the original kind in the diagnostic counters
        assert net.retry_messages_by_kind == {
            MessageKind.STATISTICS_PUSH: net.retry_messages()
        }
        assert net.bytes_of_kind(MessageKind.RETRY) == net.retry_bytes()
        # the base kind's count stays exact: one per send
        assert (
            net.bytes_of_kind(MessageKind.STATISTICS_PUSH) == 400 * 1000
        )

    def test_retries_bounded_by_max_attempts(self):
        plan = FaultPlan(default=LinkFaults(drop=0.8), seed=3, max_attempts=3)
        net = LossyNetworkModel(fault_plan=plan)
        _flood(net, n=100)
        # at most max_attempts - 1 retransmits per original message
        assert net.retry_messages() <= 100 * (plan.max_attempts - 1)

    def test_unchecked_kinds_retransmit_as_themselves(self):
        plan = FaultPlan(default=LinkFaults(drop=0.8), seed=4)
        net = LossyNetworkModel(fault_plan=plan)
        for _ in range(100):
            net.send(Message(MessageKind.HEARTBEAT, 0, Message.MASTER, 10))
            net.consume_extra_seconds()
        assert net.dropped > 0
        assert net.bytes_of_kind(MessageKind.RETRY) == 0

    def test_delay_charges_plan_delay(self):
        plan = FaultPlan(default=LinkFaults(delay=1.0), seed=5, delay_s=0.25)
        net = LossyNetworkModel(fault_plan=plan)
        net.send(Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 10))
        assert net.consume_extra_seconds() == pytest.approx(0.25)
        # the accumulator drains: a second read is exactly zero
        assert net.consume_extra_seconds() == 0.0

    def test_duplicate_delivers_extra_copy(self):
        plan = FaultPlan(default=LinkFaults(duplicate=1.0), seed=6)
        net = LossyNetworkModel(fault_plan=plan)
        net.send(Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 10))
        assert net.duplicated == 1
        assert net.retry_messages() == 1

    def test_reset_counters_clears_fault_state(self):
        plan = FaultPlan(default=LinkFaults(drop=0.5, delay=0.5), seed=7)
        net = LossyNetworkModel(fault_plan=plan)
        _flood(net, n=50)
        net.reset_counters()
        assert net.retry_messages() == 0
        assert net.dropped == 0
        assert net.consume_extra_seconds() == 0.0


class TestPayForUse:
    def test_plain_network_hook_is_exact_zero(self):
        net = NetworkModel()
        net.send(Message(MessageKind.CONTROL, 0, 1, 10))
        assert net.consume_extra_seconds() == 0.0

    def test_lossless_plan_is_bit_identical(self):
        """FaultPlan.none() takes the exact lossless code path."""
        lossy = LossyNetworkModel(fault_plan=FaultPlan.none())
        clean = NetworkModel()
        assert _flood(lossy) == _flood(clean)
        assert lossy.retry_messages() == 0
        assert lossy.snapshot() == clean.snapshot()
