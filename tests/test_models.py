"""Unit tests for the statistics models: GLMs, MLR, FM.

The two load-bearing checks per model:
* gradients match finite differences of the loss (correct math);
* the statistics decomposition identities of Section II-C hold
  (distributed == single-machine) — exercised more broadly in
  test_model_properties.py.
"""

import numpy as np
import pytest

from repro.datasets import make_classification, make_multiclass, make_regression
from repro.models import (
    L2,
    FactorizationMachine,
    LeastSquares,
    LinearSVM,
    LogisticRegression,
    MultinomialLogisticRegression,
    make_model,
    MODEL_REGISTRY,
)


def finite_difference_gradient(model, features, labels, params, eps=1e-6):
    grad = np.zeros_like(params)
    flat = params.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = model.loss(features, labels, params)
        flat[i] = orig - eps
        down = model.loss(features, labels, params)
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


class TestLogisticRegression:
    @pytest.fixture
    def data(self):
        return make_classification(40, 15, nnz_per_row=5, seed=2)

    def test_init_is_zero(self):
        model = LogisticRegression()
        assert np.all(model.init_params(10) == 0.0)
        assert model.param_shape(10) == (10,)
        assert model.params_per_feature() == 1

    def test_initial_loss_is_log2(self, data):
        model = LogisticRegression()
        w = model.init_params(data.n_features)
        assert model.loss(data.features, data.labels, w) == pytest.approx(np.log(2))

    def test_gradient_matches_finite_difference(self, data, rng):
        model = LogisticRegression()
        w = rng.normal(size=data.n_features) * 0.5
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_gradient_with_l2_matches_finite_difference(self, data, rng):
        model = LogisticRegression(regularizer=L2(0.1))
        w = rng.normal(size=data.n_features) * 0.5
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_predictions_are_probabilities(self, data, rng):
        model = LogisticRegression()
        w = rng.normal(size=data.n_features)
        probs = model.predict(data.features, w)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_labels(self, data, rng):
        model = LogisticRegression()
        w = rng.normal(size=data.n_features)
        assert set(np.unique(model.predict_labels(data.features, w))) <= {-1.0, 1.0}

    def test_statistics_width(self):
        assert LogisticRegression().statistics_width == 1


class TestLinearSVM:
    @pytest.fixture
    def data(self):
        return make_classification(40, 15, nnz_per_row=5, seed=3)

    def test_gradient_matches_finite_difference(self, data, rng):
        model = LinearSVM()
        # stay away from hinge kinks by nudging w
        w = rng.normal(size=data.n_features) * 0.37 + 0.011
        stats = model.compute_statistics(data.features, w)
        margins = data.labels * stats[:, 0]
        if np.any(np.abs(margins - 1.0) < 1e-4):
            pytest.skip("sampled a kink")
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_training_reduces_loss(self, data):
        model = LinearSVM()
        w = model.init_params(data.n_features)
        initial = model.loss(data.features, data.labels, w)
        for t in range(60):
            w -= 0.3 * model.gradient(data.features, data.labels, w)
        assert model.loss(data.features, data.labels, w) < initial


class TestLeastSquares:
    def test_gradient_matches_finite_difference(self, rng):
        data = make_regression(30, 12, nnz_per_row=4, seed=4)
        model = LeastSquares()
        w = rng.normal(size=12)
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_solves_noiseless_system(self):
        data = make_regression(400, 10, nnz_per_row=5, noise_std=0.0, seed=5)
        model = LeastSquares()
        w = model.init_params(10)
        for t in range(800):
            w -= 0.05 * model.gradient(data.features, data.labels, w)
        assert model.loss(data.features, data.labels, w) < 1e-2


class TestMLR:
    @pytest.fixture
    def data(self):
        return make_multiclass(40, 12, n_classes=3, nnz_per_row=4, seed=6)

    def test_shapes(self):
        model = MultinomialLogisticRegression(n_classes=3)
        assert model.param_shape(12) == (12, 3)
        assert model.statistics_width == 3
        assert model.params_per_feature() == 3

    def test_gradient_matches_finite_difference(self, data, rng):
        model = MultinomialLogisticRegression(n_classes=3)
        w = rng.normal(size=(12, 3)) * 0.3
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_initial_loss_is_log_k(self, data):
        model = MultinomialLogisticRegression(n_classes=3)
        w = model.init_params(12)
        assert model.loss(data.features, data.labels, w) == pytest.approx(np.log(3))

    def test_predictions_are_class_ids(self, data, rng):
        model = MultinomialLogisticRegression(n_classes=3)
        w = rng.normal(size=(12, 3))
        preds = model.predict(data.features, w)
        assert set(np.unique(preds)) <= {0.0, 1.0, 2.0}

    def test_rejects_out_of_range_labels(self, data, rng):
        model = MultinomialLogisticRegression(n_classes=2)
        w = rng.normal(size=(12, 2))
        with pytest.raises(ValueError):
            model.gradient(data.features, np.full(40, 5.0), w)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            MultinomialLogisticRegression(n_classes=1)


class TestFactorizationMachine:
    @pytest.fixture
    def data(self):
        return make_classification(30, 10, nnz_per_row=4, binary_features=False, seed=7)

    def test_shapes(self):
        model = FactorizationMachine(n_factors=4)
        assert model.param_shape(10) == (10, 5)
        assert model.statistics_width == 5
        assert model.params_per_feature() == 5

    def test_init_breaks_symmetry(self):
        model = FactorizationMachine(n_factors=4)
        params = model.init_params(10, seed=1)
        assert np.all(params[:, 0] == 0.0)
        assert np.std(params[:, 1:]) > 0

    def test_init_deterministic(self):
        model = FactorizationMachine(n_factors=2)
        assert np.array_equal(model.init_params(5, seed=3), model.init_params(5, seed=3))

    def test_gradient_matches_finite_difference(self, data, rng):
        model = FactorizationMachine(n_factors=3)
        params = model.init_params(10, seed=2)
        params += rng.normal(size=params.shape) * 0.1
        grad = model.gradient(data.features, data.labels, params)
        numeric = finite_difference_gradient(model, data.features, data.labels, params)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_raw_score_matches_rendle_definition(self, data, rng):
        """Equation 10's rewriting equals the explicit pairwise form."""
        model = FactorizationMachine(n_factors=3)
        params = model.init_params(10, seed=4) * 10  # exaggerate factors
        stats = model.compute_statistics(data.features, params)
        scores = model._raw_scores(stats)
        dense = data.features.to_dense()
        w, V = params[:, 0], params[:, 1:]
        for i in range(data.n_rows):
            x = dense[i]
            pairwise = 0.0
            for a in range(10):
                for b in range(a + 1, 10):
                    pairwise += np.dot(V[a], V[b]) * x[a] * x[b]
            expected = np.dot(w, x) + pairwise
            assert scores[i] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_training_reduces_loss(self, data):
        model = FactorizationMachine(n_factors=2)
        params = model.init_params(10, seed=5)
        initial = model.loss(data.features, data.labels, params)
        for t in range(100):
            params -= 0.2 * model.gradient(data.features, data.labels, params)
        assert model.loss(data.features, data.labels, params) < initial

    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            FactorizationMachine(n_factors=0)


class TestRegistry:
    def test_all_models_constructible(self):
        assert make_model("lr").name == "lr"
        assert make_model("svm").name == "svm"
        assert make_model("least_squares").name == "least_squares"
        assert make_model("mlr", n_classes=3).name == "mlr"
        assert make_model("fm", n_factors=2).name == "fm"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_model("transformer")

    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {
            "lr", "svm", "least_squares", "smooth_svm", "huber", "mlr", "fm", "ffm"
        }
