"""StatisticsRecoveryError escalation through the engine's BackupSync.

Satellite of the chaos PR: the paper's footnote 6 ("just kill this
worker") has a sharp edge — once a whole backup group is dead, the
missing statistics are unrecoverable and the engine must escalate
rather than silently proceed.
"""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import StatisticsRecoveryError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, FailureInjector, SimulatedCluster, StragglerModel


def make_driver(data, backup=0, failures=None, straggler=None, iterations=10):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    config = ColumnSGDConfig(
        batch_size=64, iterations=iterations, eval_every=0, seed=9,
        block_size=64, backup=backup,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config,
        failures=failures, straggler=straggler,
    )
    driver.load(data)
    return driver


class TestAllDeadGroup:
    def test_singleton_group_dead_raises(self, tiny_binary):
        driver = make_driver(tiny_binary)
        driver.run_round(0)
        driver.kill_worker(2)
        with pytest.raises(StatisticsRecoveryError) as err:
            driver.run_round(1)
        assert err.value.missing_groups == (2,)

    def test_whole_backup_group_dead_raises(self, tiny_binary):
        """With S=1 one death per group is survivable — both is not."""
        driver = make_driver(tiny_binary, backup=1)
        driver.run_round(0)
        driver.kill_worker(0)
        driver.run_round(1)  # replica covers
        driver.kill_worker(1)
        with pytest.raises(StatisticsRecoveryError):
            driver.run_round(2)

    def test_error_names_every_dead_group(self, tiny_binary):
        driver = make_driver(tiny_binary)
        driver.kill_worker(1)
        driver.kill_worker(3)
        with pytest.raises(StatisticsRecoveryError) as err:
            driver.run_round(0)
        assert err.value.missing_groups == (1, 3)


class TestKilledStragglersMidRun:
    def test_permanent_stragglers_killed_then_escalate(self, tiny_binary):
        """Backup recovery kills the permanent straggler every round
        (footnote 6 is per-round: the worker stays alive); permanently
        killing the whole group mid-run escalates."""
        straggler = StragglerModel(4, level=9.0, mode="permanent", seed=3)
        (victim,) = straggler.permanent_victims()
        driver = make_driver(tiny_binary, backup=1, straggler=straggler)
        driver.run_round(0)
        assert victim in driver.last_killed
        driver.run_round(1)  # replica keeps the group covered each round
        assert victim in driver.last_killed
        for w in driver.groups.groups()[driver.groups.group_of(victim)]:
            driver.kill_worker(w)
        with pytest.raises(StatisticsRecoveryError):
            driver.run_round(2)


class TestRecoveryAfterCrash:
    def test_injected_crash_recovers_next_iteration(self, tiny_binary):
        """A scheduled WORKER crash is recovered at the start of its
        iteration (zero-init), so no round ever raises."""
        driver = make_driver(
            tiny_binary, failures=FailureInjector.worker_failure(4, worker_id=2)
        )
        result = driver.fit()
        assert result.n_iterations >= 10
        assert np.isfinite(driver.evaluate_loss())
        events = driver.cluster.engine_trace.recoveries
        assert [e.worker for e in events] == [2]
        assert events[0].mode == "zero-init"

    def test_crash_with_backup_is_numerically_free(self, tiny_binary):
        clean = make_driver(tiny_binary, backup=1).fit()
        crashed = make_driver(
            tiny_binary, backup=1,
            failures=FailureInjector.worker_failure(4, worker_id=2),
        ).fit()
        assert np.allclose(clean.final_params, crashed.final_params, atol=1e-9)
