"""Packaging and metadata consistency checks."""

import pathlib
import re

import repro


class TestPackaging:
    def test_version_matches_pyproject(self):
        pyproject = (
            pathlib.Path(repro.__file__).parent.parent.parent / "pyproject.toml"
        ).read_text()
        declared = re.search(r'^version = "(.*)"', pyproject, re.M).group(1)
        assert repro.__version__ == declared

    def test_all_public_symbols_have_docstrings(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            symbol = getattr(repro, name)
            if callable(symbol) or isinstance(symbol, type):
                assert symbol.__doc__, "{} lacks a docstring".format(name)

    def test_every_package_module_has_docstring(self):
        root = pathlib.Path(repro.__file__).parent
        for path in root.rglob("*.py"):
            source = path.read_text()
            stripped = source.lstrip()
            assert stripped.startswith('"""') or stripped.startswith("'''"), (
                "{} lacks a module docstring".format(path)
            )

    def test_no_module_imports_scipy_or_sklearn(self):
        """The substrate promise: numpy only."""
        root = pathlib.Path(repro.__file__).parent
        for path in root.rglob("*.py"):
            source = path.read_text()
            assert "import scipy" not in source, path
            assert "import sklearn" not in source, path
            assert "import pandas" not in source, path
