"""Tests for the four RowSGD baselines: numerics, traffic shape, memory."""

import numpy as np
import pytest

from repro.baselines import (
    MLlibStarTrainer,
    MLlibTrainer,
    ParameterServerTrainer,
    RowSGDConfig,
    SparsePSTrainer,
    make_trainer,
    TRAINER_REGISTRY,
)
from repro.core import ColumnSGDDriver
from repro.errors import OutOfMemoryError, TrainingError
from repro.models import FactorizationMachine, LogisticRegression
from repro.net import MessageKind
from repro.optim import SGD
from repro.sim import CLUSTER1, ClusterSpec, SimulatedCluster


def fit(trainer_cls, data, workers=4, iterations=10, batch=64, **kwargs):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    config = RowSGDConfig(batch_size=batch, iterations=iterations, eval_every=5, seed=2)
    trainer = trainer_cls(LogisticRegression(), SGD(1.0), cluster, config=config, **kwargs)
    trainer.load(data)
    return trainer, trainer.fit(), cluster


ALL_BASELINES = [MLlibTrainer, MLlibStarTrainer, ParameterServerTrainer, SparsePSTrainer]


class TestNumerics:
    @pytest.mark.parametrize("trainer_cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_loss_decreases(self, trainer_cls, small_binary):
        _, result, _ = fit(trainer_cls, small_binary, iterations=40, batch=200)
        losses = [loss for _, _, loss in result.losses()]
        assert losses[-1] < losses[0]

    def test_centralized_systems_share_trajectory(self, small_binary):
        """MLlib, Petuum and MXNet run the same math — only time/memory
        models differ, so their final models are identical."""
        finals = []
        for cls in (MLlibTrainer, ParameterServerTrainer, SparsePSTrainer):
            _, result, _ = fit(cls, small_binary, iterations=15)
            finals.append(result.final_params)
        assert np.allclose(finals[0], finals[1], atol=1e-12)
        assert np.allclose(finals[0], finals[2], atol=1e-12)

    def test_mllib_star_differs_from_mllib(self, small_binary):
        """Model averaging with local steps is a different algorithm."""
        _, mllib, _ = fit(MLlibTrainer, small_binary, iterations=15)
        _, star, _ = fit(MLlibStarTrainer, small_binary, iterations=15)
        assert not np.allclose(mllib.final_params, star.final_params)

    def test_mllib_star_single_local_step_matches_mllib(self, small_binary):
        """With 1 local step and plain SGD, model averaging IS mini-batch
        SGD — a consistency check on the averaging math."""
        _, mllib, _ = fit(MLlibTrainer, small_binary, iterations=15)
        _, star, _ = fit(MLlibStarTrainer, small_binary, iterations=15, local_steps=1)
        assert np.allclose(mllib.final_params, star.final_params, atol=1e-10)

    def test_fit_without_load_raises(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        trainer = MLlibTrainer(LogisticRegression(), SGD(1.0), cluster)
        with pytest.raises(TrainingError):
            trainer.fit()

    def test_local_steps_validated(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(ValueError):
            MLlibStarTrainer(LogisticRegression(), SGD(1.0), cluster, local_steps=0)


class TestTrafficShape:
    def test_mllib_traffic_scales_with_model_size(self):
        from repro.datasets import make_classification

        per_m = {}
        for m in (2000, 20_000):
            data = make_classification(500, m, nnz_per_row=8, seed=3)
            _, result, _ = fit(MLlibTrainer, data, iterations=4)
            per_m[m] = result.records[-1].bytes_sent
        assert per_m[20_000] > 5 * per_m[2000]

    def test_mxnet_traffic_flat_in_model_size(self):
        from repro.datasets import make_classification

        per_m = {}
        for m in (2000, 20_000):
            data = make_classification(500, m, nnz_per_row=8, seed=3)
            _, result, _ = fit(SparsePSTrainer, data, iterations=4)
            per_m[m] = result.records[-1].bytes_sent
        assert per_m[20_000] < 1.5 * per_m[2000]

    def test_petuum_same_bytes_as_mllib_but_faster(self, small_binary):
        """The paper: PS spreads the same bytes over S NICs."""
        _, mllib, mllib_cluster = fit(MLlibTrainer, small_binary, iterations=6)
        _, petuum, petuum_cluster = fit(ParameterServerTrainer, small_binary, iterations=6)
        mllib_pull = mllib_cluster.network.bytes_of_kind(MessageKind.MODEL_PULL)
        petuum_pull = petuum_cluster.network.bytes_of_kind(MessageKind.MODEL_PULL)
        assert mllib_pull == petuum_pull
        assert petuum.avg_iteration_seconds() < mllib.avg_iteration_seconds()

    def test_table4_ordering_large_model(self):
        """Table IV shape at a large (scaled) model: MLlib > Petuum >
        MXNet and ColumnSGD flat."""
        from repro.datasets import make_classification

        data = make_classification(1000, 400_000, nnz_per_row=10, seed=4)
        times = {}
        for name in ("mllib", "petuum", "mxnet", "columnsgd"):
            cluster = SimulatedCluster(CLUSTER1)
            trainer = make_trainer(
                name, LogisticRegression(), SGD(1.0), cluster,
                batch_size=100, iterations=6, eval_every=0,
            )
            trainer.load(data)
            times[name] = trainer.fit().avg_iteration_seconds()
        assert times["mllib"] > times["petuum"] > times["mxnet"]
        assert times["mllib"] > 5 * times["columnsgd"]


class TestMemory:
    def test_mllib_master_holds_model(self, small_binary):
        _, _, cluster = fit(MLlibTrainer, small_binary, iterations=2)
        assert cluster.memory_in_use(cluster.MASTER) >= 2 * small_binary.n_features * 8

    def test_ps_oom_on_huge_fm(self):
        """Table V: MXNet cannot initialise a 2.8B-parameter FM on a
        32 GB driver."""
        from repro.datasets import make_classification

        # tiny data, but force the *model* dimension huge via a tiny-memory
        # cluster so the dense-init charge overflows
        data = make_classification(200, 50_000, nnz_per_row=5, seed=5)
        spec = ClusterSpec(
            name="tiny-mem",
            n_workers=4,
            cores_per_worker=2,
            memory_bytes_per_node=50_000 * 51 * 8,  # < 2x model bytes
            bandwidth_bytes_per_s=1e9,
        )
        cluster = SimulatedCluster(spec)
        trainer = SparsePSTrainer(
            FactorizationMachine(n_factors=50), SGD(0.01), cluster,
            config=RowSGDConfig(batch_size=32, iterations=2),
        )
        with pytest.raises(OutOfMemoryError):
            trainer.load(data)

    def test_columnsgd_survives_same_budget(self):
        """ColumnSGD spreads the same model over workers and survives."""
        from repro.core import ColumnSGDConfig
        from repro.datasets import make_classification

        data = make_classification(200, 50_000, nnz_per_row=5, seed=5)
        spec = ClusterSpec(
            name="tiny-mem",
            n_workers=4,
            cores_per_worker=2,
            memory_bytes_per_node=50_000 * 51 * 8,
            bandwidth_bytes_per_s=1e9,
        )
        cluster = SimulatedCluster(spec)
        driver = ColumnSGDDriver(
            FactorizationMachine(n_factors=50), SGD(0.01), cluster,
            config=ColumnSGDConfig(batch_size=32, iterations=2, eval_every=0),
        )
        driver.load(data)  # must not raise
        driver.fit()


class TestRegistry:
    def test_all_systems_constructible(self, tiny_binary):
        for name in TRAINER_REGISTRY:
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            trainer = make_trainer(
                name, LogisticRegression(), SGD(0.5), cluster,
                batch_size=16, iterations=2, eval_every=0,
            )
            trainer.load(tiny_binary)
            result = trainer.fit()
            assert result.n_iterations >= 2

    def test_unknown_system(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(KeyError):
            make_trainer("horovod", LogisticRegression(), SGD(0.5), cluster)
