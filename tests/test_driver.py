"""ColumnSGD driver tests: exactness, convergence, timing, configuration."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver, train_columnsgd
from repro.datasets import make_classification
from repro.errors import TrainingError
from repro.models import (
    FactorizationMachine,
    L2,
    LinearSVM,
    LogisticRegression,
    MultinomialLogisticRegression,
)
from repro.optim import SGD, AdaGrad, Adam
from repro.sim import CLUSTER1, SimulatedCluster


def sequential_reference(driver, data, model, optimizer, iterations, batch_size):
    """Single-machine mini-batch SGD on the driver's own draw sequence."""
    params = model.init_params(data.n_features, seed=driver.config.seed)
    opt = optimizer.spawn()
    index = driver._index
    for t in range(iterations):
        rows = index.to_global_rows(index.sample(t, batch_size))
        batch = data.take(rows)
        gradient = model.gradient(batch.features, batch.labels, params)
        opt.step(params, gradient, t)
    return params


MODEL_OPTIMIZER_CASES = [
    ("lr", lambda: LogisticRegression(), lambda: SGD(0.5)),
    ("lr-l2", lambda: LogisticRegression(regularizer=L2(0.01)), lambda: SGD(0.5)),
    ("svm", lambda: LinearSVM(), lambda: SGD(0.2)),
    ("lr-momentum", lambda: LogisticRegression(), lambda: SGD(0.2, momentum=0.9)),
    ("lr-adagrad", lambda: LogisticRegression(), lambda: AdaGrad(0.5)),
    ("lr-adam", lambda: LogisticRegression(), lambda: Adam(0.1)),
    ("fm", lambda: FactorizationMachine(n_factors=3), lambda: SGD(0.1)),
]


class TestExactness:
    """The headline invariant: distributed == sequential trajectory."""

    @pytest.mark.parametrize("name,model_fn,opt_fn", MODEL_OPTIMIZER_CASES,
                             ids=[c[0] for c in MODEL_OPTIMIZER_CASES])
    def test_matches_sequential(self, name, model_fn, opt_fn, tiny_gaussian):
        model, optimizer = model_fn(), opt_fn()
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=32, iterations=15, eval_every=0,
                                 seed=3, block_size=64)
        driver = ColumnSGDDriver(model, optimizer, cluster, config=config)
        driver.load(tiny_gaussian)
        result = driver.fit()
        reference = sequential_reference(
            driver, tiny_gaussian, model_fn(), opt_fn(), 15, 32
        )
        assert np.allclose(result.final_params, reference, atol=1e-9)

    def test_mlr_matches_sequential(self, tiny_multiclass):
        model = MultinomialLogisticRegression(n_classes=4)
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=32, iterations=10, eval_every=0,
                                 seed=1, block_size=64)
        driver = ColumnSGDDriver(model, SGD(0.5), cluster, config=config)
        driver.load(tiny_multiclass)
        result = driver.fit()
        reference = sequential_reference(
            driver, tiny_multiclass, MultinomialLogisticRegression(n_classes=4),
            SGD(0.5), 10, 32
        )
        assert np.allclose(result.final_params, reference, atol=1e-9)

    @pytest.mark.parametrize("scheme", ["round_robin", "range", "hash"])
    def test_exactness_independent_of_scheme(self, scheme, tiny_binary):
        results = []
        for s in (scheme, "round_robin"):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            config = ColumnSGDConfig(batch_size=32, iterations=10, eval_every=0,
                                     seed=2, block_size=64, scheme=s)
            driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
            driver.load(tiny_binary)
            results.append(driver.fit().final_params)
        assert np.allclose(results[0], results[1], atol=1e-9)

    def test_exactness_independent_of_worker_count(self, tiny_binary):
        finals = []
        for k in (1, 2, 4, 8):
            cluster = SimulatedCluster(CLUSTER1.with_workers(k))
            config = ColumnSGDConfig(batch_size=32, iterations=10, eval_every=0,
                                     seed=4, block_size=64)
            driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
            driver.load(tiny_binary)
            finals.append(driver.fit().final_params)
        for params in finals[1:]:
            assert np.allclose(finals[0], params, atol=1e-9)

    def test_naive_loader_same_numerics(self, tiny_binary):
        finals = []
        for loader in ("block", "naive"):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            config = ColumnSGDConfig(batch_size=32, iterations=8, eval_every=0,
                                     seed=5, block_size=64, loader=loader)
            driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
            driver.load(tiny_binary)
            finals.append(driver.fit().final_params)
        assert np.allclose(finals[0], finals[1], atol=1e-12)


class TestConvergence:
    def test_loss_decreases(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        result = train_columnsgd(
            small_binary, LogisticRegression(), SGD(1.0), cluster,
            batch_size=200, iterations=60, eval_every=10, seed=0,
        )
        losses = [loss for _, _, loss in result.losses()]
        assert losses[0] == pytest.approx(np.log(2), abs=1e-6)
        assert losses[-1] < 0.75 * losses[0]

    @pytest.mark.filterwarnings("ignore:overflow")
    def test_divergence_detected(self, tiny_regression):
        from repro.models import LeastSquares

        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        with pytest.raises(TrainingError, match="diverged"):
            train_columnsgd(
                tiny_regression, LeastSquares(), SGD(1e6), cluster,
                batch_size=50, iterations=200, eval_every=5, block_size=64,
            )


class TestTimingModel:
    def test_iteration_time_flat_in_model_size(self):
        """Fig 10's shape: per-iteration time independent of m."""
        times = []
        for m in (1000, 10_000, 50_000):
            data = make_classification(2000, m, nnz_per_row=10, seed=1)
            cluster = SimulatedCluster(CLUSTER1)
            result = train_columnsgd(
                data, LogisticRegression(), SGD(1.0), cluster,
                batch_size=100, iterations=10, eval_every=0,
            )
            times.append(result.avg_iteration_seconds())
        assert max(times) / min(times) < 1.2

    def test_iteration_time_grows_with_batch(self, small_binary):
        """Fig 4(b): beyond the latency floor, time scales with B."""
        times = {}
        for batch in (50, 1000):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            result = train_columnsgd(
                small_binary, LogisticRegression(), SGD(1.0), cluster,
                batch_size=batch, iterations=10, eval_every=0,
            )
            times[batch] = result.avg_iteration_seconds()
        assert times[1000] >= times[50]

    def test_two_task_overheads_per_iteration(self, small_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        result = train_columnsgd(
            small_binary, LogisticRegression(), SGD(1.0), cluster,
            batch_size=100, iterations=5, eval_every=0,
        )
        assert result.avg_iteration_seconds() >= 2 * cluster.cost.task_overhead

    def test_statistics_bytes_independent_of_model_size(self):
        """Table I: ColumnSGD communication depends only on B (and K)."""
        bytes_per_iter = []
        for m in (2000, 20_000):
            data = make_classification(1000, m, nnz_per_row=8, seed=2)
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            result = train_columnsgd(
                data, LogisticRegression(), SGD(1.0), cluster,
                batch_size=100, iterations=5, eval_every=0,
            )
            bytes_per_iter.append(result.records[-1].bytes_sent)
        assert bytes_per_iter[0] == bytes_per_iter[1]

    def test_fm_statistics_bytes_scale_with_factors(self, tiny_binary):
        """FM ships (F+1) * B statistics (Section III-C)."""
        per_factor = {}
        for factors in (2, 5):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            result = train_columnsgd(
                tiny_binary, FactorizationMachine(n_factors=factors), SGD(0.01),
                cluster, batch_size=50, iterations=3, eval_every=0, block_size=64,
            )
            per_factor[factors] = result.records[-1].bytes_sent
        ratio = per_factor[5] / per_factor[2]
        assert ratio == pytest.approx(6 / 3, rel=0.1)


class TestDriverApi:
    def test_fit_without_load_raises(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster)
        with pytest.raises(TrainingError):
            driver.fit()

    def test_fit_accepts_dataset_directly(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        config = ColumnSGDConfig(batch_size=16, iterations=3, block_size=64)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
        result = driver.fit(tiny_binary)
        assert result.n_iterations >= 3

    def test_current_params_shape(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        config = ColumnSGDConfig(batch_size=16, iterations=2, block_size=64)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
        driver.load(tiny_binary)
        assert driver.current_params().shape == (tiny_binary.n_features,)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ColumnSGDConfig(batch_size=0)
        with pytest.raises(ValueError):
            ColumnSGDConfig(loader="magic")
        with pytest.raises(ValueError):
            ColumnSGDConfig(iterations=-1)

    def test_memory_charged(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        config = ColumnSGDConfig(batch_size=16, iterations=2, block_size=64)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
        driver.load(tiny_binary)
        assert cluster.memory_in_use(cluster.MASTER) > 0
        assert cluster.memory_in_use(0) > 0
        # master footprint is batch-sized, not model-sized
        assert cluster.memory_in_use(cluster.MASTER) < cluster.memory_in_use(0)

    def test_load_report_exposed(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        config = ColumnSGDConfig(batch_size=16, iterations=2, block_size=64)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config)
        report = driver.load(tiny_binary)
        assert driver.load_report is report
        assert report.seconds > 0

    def test_result_metadata(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.1), cluster,
            batch_size=16, iterations=4, eval_every=2, block_size=64,
        )
        assert result.system == "ColumnSGD"
        assert result.model == "lr"
        assert result.batch_size == 16
        assert result.n_workers == 2
        assert "ColumnSGD" in result.describe()
