"""Tests for checkpoint save/load and driver warm start."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import DataError, TrainingError
from repro.io import load_model, save_model
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


class TestCheckpointRoundTrip:
    def test_roundtrip_vector(self, tmp_path, rng):
        params = rng.normal(size=50)
        path = tmp_path / "model.npz"
        save_model(path, "lr", params, metadata={"dataset": "avazu", "lr": 10.0})
        name, loaded, meta = load_model(path)
        assert name == "lr"
        assert np.array_equal(loaded, params)
        assert meta == {"dataset": "avazu", "lr": 10.0}

    def test_roundtrip_matrix(self, tmp_path, rng):
        params = rng.normal(size=(20, 5))
        save_model(tmp_path / "fm.npz", "fm", params)
        name, loaded, meta = load_model(tmp_path / "fm.npz")
        assert name == "fm"
        assert loaded.shape == (20, 5)
        assert meta == {}

    def test_extension_added_by_numpy_is_found(self, tmp_path, rng):
        # np.savez appends .npz when missing; load_model should cope.
        save_model(tmp_path / "model", "lr", rng.normal(size=3))
        name, _, _ = load_model(tmp_path / "model")
        assert name == "lr"

    def test_reserved_metadata_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_model(tmp_path / "m.npz", "lr", np.zeros(3),
                       metadata={"model_name": "x"})

    def test_non_checkpoint_rejected(self, tmp_path):
        np.savez(str(tmp_path / "junk.npz"), stuff=np.zeros(3))
        with pytest.raises(DataError):
            load_model(tmp_path / "junk.npz")


class TestWarmStart:
    def make_driver(self, data, iterations=10):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=64, iterations=iterations,
                                 eval_every=0, seed=6, block_size=64)
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
        driver.load(data)
        return driver

    def test_set_params_roundtrip(self, tiny_binary, rng):
        driver = self.make_driver(tiny_binary)
        params = rng.normal(size=tiny_binary.n_features)
        driver.set_params(params)
        assert np.allclose(driver.current_params(), params)

    def test_set_params_shape_checked(self, tiny_binary):
        driver = self.make_driver(tiny_binary)
        with pytest.raises(TrainingError, match="shape"):
            driver.set_params(np.zeros(7))

    def test_set_params_before_load(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster)
        with pytest.raises(TrainingError):
            driver.set_params(np.zeros(3))

    def test_warm_start_resumes_from_checkpoint(self, small_binary, tmp_path):
        # train 20 iterations, checkpoint, resume 20 more
        first = self.make_driver(small_binary, iterations=20)
        result1 = first.fit()
        save_model(tmp_path / "ckpt.npz", "lr", result1.final_params)

        _, params, _ = load_model(tmp_path / "ckpt.npz")
        resumed = self.make_driver(small_binary, iterations=20)
        resumed.set_params(params)
        warm_loss = resumed.evaluate_loss()
        cold_loss = self.make_driver(small_binary).evaluate_loss()
        assert warm_loss < cold_loss  # starts where the first run ended

        result2 = resumed.fit()
        assert result2.final_loss() is None or True  # eval_every=0 path
        assert resumed.evaluate_loss() <= warm_loss + 1e-6
