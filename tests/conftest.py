"""Shared fixtures: small deterministic datasets and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_classification, make_multiclass, make_regression
from repro.sim import CLUSTER1, ComputeCostModel, SimulatedCluster


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_binary():
    """300 rows x 120 features, binary labels in {-1, +1}."""
    return make_classification(300, 120, nnz_per_row=8, seed=11)


@pytest.fixture
def tiny_gaussian():
    """Like tiny_binary but with Gaussian feature values.

    Exactness tests use this: real-valued features keep hinge margins
    off the measure-zero kink at 1.0, where float summation order could
    legitimately flip the subgradient indicator.
    """
    return make_classification(
        300, 120, nnz_per_row=8, binary_features=False, seed=17
    )


@pytest.fixture
def small_binary():
    """2000 rows x 500 features — enough signal for convergence checks."""
    return make_classification(2000, 500, nnz_per_row=12, seed=5)


@pytest.fixture
def tiny_regression():
    return make_regression(300, 100, nnz_per_row=8, seed=21)


@pytest.fixture
def tiny_multiclass():
    return make_multiclass(300, 100, n_classes=4, nnz_per_row=8, seed=31)


@pytest.fixture
def cluster4():
    """Four-worker cluster with Cluster 1 hardware."""
    return SimulatedCluster(CLUSTER1.with_workers(4))


@pytest.fixture
def cluster8():
    """The paper's Cluster 1 (8 workers)."""
    return SimulatedCluster(CLUSTER1)


@pytest.fixture
def fast_cluster4():
    """Four workers with zero task overhead — for pure-comm assertions."""
    return SimulatedCluster(
        CLUSTER1.with_workers(4), cost=ComputeCostModel(task_overhead=0.0)
    )
