"""Backup computation in the driver: correctness and Fig 9's shape."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import PartitionError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel


def run(data, backup=0, straggler=None, iterations=12, workers=4, seed=3):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    config = ColumnSGDConfig(
        batch_size=32, iterations=iterations, eval_every=0, seed=seed,
        block_size=64, backup=backup,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(0.5), cluster, config=config, straggler=straggler
    )
    driver.load(data)
    return driver.fit()


class TestBackupCorrectness:
    def test_backup_trajectory_matches_pure(self, tiny_binary):
        """Replicated statistics recover the exact same model updates."""
        pure = run(tiny_binary, backup=0)
        backed = run(tiny_binary, backup=1)
        assert np.allclose(pure.final_params, backed.final_params, atol=1e-9)

    def test_backup_with_straggler_still_exact(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=1)
        pure = run(tiny_binary, backup=0)
        backed = run(tiny_binary, backup=1, straggler=straggler)
        assert np.allclose(pure.final_params, backed.final_params, atol=1e-9)

    def test_backup_requires_divisible_workers(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(3))
        config = ColumnSGDConfig(backup=1, block_size=64)
        with pytest.raises(PartitionError):
            ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)

    def test_backup_system_name(self, tiny_binary):
        assert run(tiny_binary, backup=1).system == "ColumnSGD-backup1"


class TestFig9Shape:
    """Fig 9: stragglers slow pure ColumnSGD roughly (1 + level)x per
    phase; backup computation flattens the penalty."""

    def test_stragglers_slow_pure_columnsgd(self, tiny_binary):
        pure = run(tiny_binary, backup=0)
        sl1 = run(tiny_binary, backup=0, straggler=StragglerModel(4, level=1.0, seed=2))
        sl5 = run(tiny_binary, backup=0, straggler=StragglerModel(4, level=5.0, seed=2))
        t0 = pure.avg_iteration_seconds()
        t1 = sl1.avg_iteration_seconds()
        t5 = sl5.avg_iteration_seconds()
        assert t1 > t0
        assert t5 > t1

    def test_backup_absorbs_straggler(self, tiny_binary):
        straggler = StragglerModel(4, level=5.0, seed=2)
        pure = run(tiny_binary, backup=0)
        slowed = run(tiny_binary, backup=0, straggler=StragglerModel(4, level=5.0, seed=2))
        backed = run(tiny_binary, backup=1, straggler=straggler)
        # backup-with-straggler is close to pure; far below straggled pure
        assert backed.avg_iteration_seconds() < slowed.avg_iteration_seconds()
        assert backed.avg_iteration_seconds() < 1.5 * pure.avg_iteration_seconds()

    def test_backup_comm_cost_unchanged(self, tiny_binary):
        """Section IV-B: communication is unaffected by backup level."""
        pure = run(tiny_binary, backup=0)
        backed = run(tiny_binary, backup=1)
        # backup gathers fewer (per-group) statistics messages, never more
        assert backed.records[-1].bytes_sent <= pure.records[-1].bytes_sent
