"""Runtime-layer tests: the contract, the clock, and the sim adapter.

The load-bearing property is adapter transparency: every SimRuntime
call must produce the same seconds and the same network accounting as
calling the ``sim``/``net`` stack directly, because the engine now goes
through the runtime on every round (the golden-trajectory suite pins
the end-to-end consequence; these tests pin each call).
"""

import pytest

from repro.net.message import MessageKind
from repro.net.topology import StarTopology, allreduce_time
from repro.net.network import NetworkModel
from repro.runtime import BACKENDS, Runtime, SimRuntime, WallClock
from repro.sim import CLUSTER1, SimulatedCluster
from repro.utils.rng import iteration_seed


def make_cluster(workers=4):
    return SimulatedCluster(CLUSTER1.with_workers(workers))


# ----------------------------------------------------------------------
# WallClock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_accumulates(self):
        clock = WallClock()
        assert clock.now() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.25) == 1.75
        assert clock.now() == 1.75

    def test_reset(self):
        clock = WallClock(2.0)
        clock.advance(1.0)
        clock.reset()
        assert clock.now() == 0.0
        clock.reset(5.0)
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            WallClock().advance(-0.1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            WallClock(-1.0)


# ----------------------------------------------------------------------
# the abstract contract
# ----------------------------------------------------------------------
class TestRuntimeContract:
    def test_backends_names(self):
        assert BACKENDS == ("sim", "local")

    def test_abstract_runtime_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Runtime()

    def test_round_seed_is_iteration_seed(self):
        runtime = SimRuntime(make_cluster())
        for t in (0, 1, 17):
            assert runtime.round_seed(123, t) == iteration_seed(123, t)

    def test_context_manager_closes(self):
        closed = []

        class Probe(SimRuntime):
            def close(self):
                closed.append(True)

        with Probe(make_cluster()) as runtime:
            assert runtime.name == "sim"
        assert closed == [True]

    def test_repr_names_the_backend(self):
        text = repr(SimRuntime(make_cluster(3)))
        assert "sim" in text and "3" in text


# ----------------------------------------------------------------------
# SimRuntime: transparent adapter over the simulator stack
# ----------------------------------------------------------------------
class TestSimRuntimeTransparency:
    def test_cluster_runtime_property_is_cached(self):
        cluster = make_cluster()
        runtime = cluster.runtime
        assert isinstance(runtime, SimRuntime)
        assert cluster.runtime is runtime
        assert runtime.cluster is cluster

    def test_delegates_clock_network_workers(self):
        cluster = make_cluster(5)
        runtime = cluster.runtime
        assert runtime.n_workers == 5
        assert runtime.clock is cluster.clock
        assert runtime.network is cluster.network

    def test_gather_matches_direct_topology_call(self):
        sizes = [100, 200, 300, 400]
        cluster = make_cluster()
        direct = StarTopology(
            NetworkModel(
                bandwidth=cluster.network.bandwidth,
                latency=cluster.network.latency,
            ),
            4,
        )
        expected = direct.gather(MessageKind.STATISTICS_PUSH, sizes)
        got = cluster.runtime.gather(MessageKind.STATISTICS_PUSH, sizes)
        assert got == expected
        assert cluster.network.total_bytes() == sum(sizes)

    def test_broadcast_matches_direct_topology_call(self):
        cluster = make_cluster()
        direct = StarTopology(
            NetworkModel(
                bandwidth=cluster.network.bandwidth,
                latency=cluster.network.latency,
            ),
            4,
        )
        expected = direct.broadcast(MessageKind.STATISTICS_BCAST, 512)
        got = cluster.runtime.broadcast(MessageKind.STATISTICS_BCAST, 512)
        assert got == expected
        assert cluster.network.total_bytes() == 4 * 512

    def test_sharded_variants_delegate(self):
        cluster = make_cluster()
        runtime = cluster.runtime
        t1 = runtime.sharded_gather(MessageKind.GRADIENT_PUSH, [64] * 4, 2)
        t2 = runtime.sharded_broadcast(MessageKind.MODEL_PULL, 64, 2)
        assert t1 > 0 and t2 > 0
        assert cluster.network.total_bytes() == 4 * 64 + 4 * 64

    def test_allreduce_matches_helper(self):
        cluster = make_cluster()
        reference = NetworkModel(
            bandwidth=cluster.network.bandwidth, latency=cluster.network.latency
        )
        expected = allreduce_time(reference, 4096, 4)
        got = cluster.runtime.allreduce(MessageKind.MODEL_AVG, 4096)
        assert got == expected
        assert cluster.network.total_bytes() == reference.total_bytes()

    def test_barrier_is_a_noop(self):
        cluster = make_cluster()
        before = cluster.clock.now()
        cluster.runtime.barrier()
        assert cluster.clock.now() == before
        assert cluster.network.total_bytes() == 0
