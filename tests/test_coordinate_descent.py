"""Tests for the distributed coordinate-descent extension."""

import numpy as np
import pytest

from repro.datasets import make_regression
from repro.errors import TrainingError
from repro.extensions import RidgeCDTrainer
from repro.linalg.ops import row_dots
from repro.sim import CLUSTER1, SimulatedCluster


def ridge_solution(data, lam):
    """Closed-form (X^T X / N + lam I)^-1 X^T y / N."""
    dense = data.features.to_dense()
    n = data.n_rows
    gram = dense.T @ dense / n + lam * np.eye(data.n_features)
    return np.linalg.solve(gram, dense.T @ data.labels / n)


def make_trainer(data, lam=0.1, iterations=60, workers=4, **kwargs):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    trainer = RidgeCDTrainer(
        cluster, lam=lam, iterations=iterations, eval_every=10,
        seed=5, block_size=64, **kwargs,
    )
    trainer.load(data)
    return trainer


class TestRidgeCD:
    @pytest.fixture
    def data(self):
        return make_regression(400, 60, nnz_per_row=8, noise_std=0.05, seed=30)

    def test_residual_invariant_every_round(self, data):
        """r == X w - y exactly after every sync, despite staleness."""
        trainer = make_trainer(data, iterations=1)
        for t in range(10):
            trainer.run_round(t)
            w = trainer.current_params()
            expected = row_dots(data.features, w) - data.labels
            assert np.allclose(trainer.residual(), expected, atol=1e-9)

    def test_converges_near_closed_form(self, data):
        lam = 0.1
        trainer = make_trainer(data, lam=lam, iterations=120)
        result = trainer.fit()
        w_star = ridge_solution(data, lam)
        optimal = float(
            0.5 * np.mean((row_dots(data.features, w_star) - data.labels) ** 2)
            + 0.5 * lam * np.dot(w_star, w_star)
        )
        assert result.final_loss() < optimal * 1.1 + 1e-9

    def test_loss_monotone_decreasing(self, data):
        trainer = make_trainer(data, iterations=80)
        result = trainer.fit()
        losses = [l for _, _, l in result.losses()]
        assert losses[-1] < 0.5 * losses[0]
        # each evaluation is no worse than the previous (tiny tolerance)
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_plain_least_squares(self, data):
        trainer = make_trainer(data, lam=0.0, iterations=120)
        result = trainer.fit()
        assert result.final_loss() < 0.2 * 0.5 * float(np.mean(data.labels ** 2))

    def test_communication_scales_with_n_not_batch(self, data):
        """CD's sync is O(N) — the structural contrast with ColumnSGD."""
        trainer = make_trainer(data, iterations=3)
        result = trainer.fit()
        per_round = result.records[-1].bytes_sent
        # 2K messages of ~N float64 each
        assert per_round > 2 * 4 * data.n_rows * 8

    def test_evaluate_on_other_dataset(self, data):
        trainer = make_trainer(data, iterations=20)
        trainer.fit()
        holdout = make_regression(100, 60, nnz_per_row=8, seed=31)
        assert np.isfinite(trainer.evaluate_loss(holdout))

    def test_fit_without_load(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(TrainingError):
            RidgeCDTrainer(cluster).fit()

    def test_coords_per_round_respected(self, data):
        trainer = make_trainer(data, iterations=1, coords_per_round=1)
        before = trainer.current_params().copy()
        trainer.run_round(0)
        changed = np.sum(trainer.current_params() != before)
        assert changed <= 4  # at most one coordinate per worker

    def test_validation(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(ValueError):
            RidgeCDTrainer(cluster, lam=-1.0)
        with pytest.raises(ValueError):
            RidgeCDTrainer(cluster, step_scale=0.0)
