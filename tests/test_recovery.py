"""Heartbeats, checkpoints, and the RecoveryManager (repro.core.recovery)."""

import numpy as np
import pytest

from repro.core import (
    ColumnSGDConfig,
    ColumnSGDDriver,
    RecoveryPolicy,
)
from repro.errors import ConfigurationError, MasterFailedError
from repro.models import LogisticRegression
from repro.net import MessageKind
from repro.optim import SGD
from repro.sim import CLUSTER1, FailureInjector, SimulatedCluster


def make_driver(data, backup=0, recovery=None, failures=None, iterations=20):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    config = ColumnSGDConfig(
        batch_size=64, iterations=iterations, eval_every=0, seed=9,
        block_size=64, backup=backup,
    )
    driver = ColumnSGDDriver(
        LogisticRegression(), SGD(1.0), cluster, config=config,
        failures=failures, recovery=recovery,
    )
    driver.load(data)
    return driver


class TestRecoveryPolicy:
    def test_disabled_is_free(self):
        policy = RecoveryPolicy.disabled()
        assert policy.checkpoint_every == 0
        assert policy.detection_delay_s == 0.0
        assert not policy.master_restart

    def test_detection_delay(self):
        policy = RecoveryPolicy(heartbeat_interval_s=0.5, heartbeat_timeout_beats=4)
        assert policy.detection_delay_s == pytest.approx(2.0)

    def test_rejects_bad_beats(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(heartbeat_timeout_beats=0)

    def test_master_restart_requires_checkpoints(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(master_restart=True)
        RecoveryPolicy(checkpoint_every=5, master_restart=True)  # fine


class TestCheckpointStore:
    def test_periodic_writes(self, tiny_binary):
        driver = make_driver(
            tiny_binary, recovery=RecoveryPolicy(checkpoint_every=5), iterations=11
        )
        driver.fit()
        store = driver.recovery_manager.checkpoints
        assert store.writes == 3  # iterations 0, 5, 10
        assert store.last_iteration == 10
        assert all(store.has_snapshot(p) for p in range(4))

    def test_checkpoint_traffic_is_unchecked_kind(self, tiny_binary):
        driver = make_driver(
            tiny_binary, recovery=RecoveryPolicy(checkpoint_every=5), iterations=6
        )
        driver.fit()
        assert driver.cluster.network.bytes_of_kind(MessageKind.CHECKPOINT) > 0

    def test_write_charges_time(self, tiny_binary):
        with_cp = make_driver(
            tiny_binary, recovery=RecoveryPolicy(checkpoint_every=1), iterations=5
        )
        without = make_driver(tiny_binary, iterations=5)
        charged = with_cp.fit().total_sim_time
        free = without.fit().total_sim_time
        assert charged > free

    def test_snapshot_is_a_copy(self, tiny_binary):
        driver = make_driver(
            tiny_binary, recovery=RecoveryPolicy(checkpoint_every=5), iterations=6
        )
        driver.fit()
        store = driver.recovery_manager.checkpoints
        _, params, _ = store.snapshot_of(0)
        before = np.array(params, copy=True)
        driver._partitions[0].params[...] = 123.0
        assert np.array_equal(params, before)


class TestHeartbeats:
    def test_heartbeat_traffic(self, tiny_binary):
        driver = make_driver(
            tiny_binary,
            recovery=RecoveryPolicy(heartbeat_interval_s=0.05),
            iterations=5,
        )
        driver.fit()
        net = driver.cluster.network
        assert net.bytes_of_kind(MessageKind.HEARTBEAT) > 0

    def test_detection_delay_charged_on_recovery(self, tiny_binary):
        slow = make_driver(
            tiny_binary,
            recovery=RecoveryPolicy(heartbeat_interval_s=0.5),
            failures=FailureInjector.worker_failure(3, worker_id=1),
        )
        fast = make_driver(
            tiny_binary, failures=FailureInjector.worker_failure(3, worker_id=1)
        )
        slow_t = slow.fit().total_sim_time
        fast_t = fast.fit().total_sim_time
        # heartbeat probes ride the RPC fabric for free, so the gap is
        # exactly the 0.5 s x 3 beats of detection delay
        assert slow_t - fast_t == pytest.approx(1.5)


class TestRecoverWorkerModes:
    def test_replica_mode_loses_nothing(self, tiny_binary):
        driver = make_driver(tiny_binary, backup=1)
        driver.fit(iterations=5)
        before = driver.current_params()
        driver._recover_worker(1, iteration=5)
        assert np.array_equal(driver.current_params(), before)
        event = driver.cluster.engine_trace.recoveries[-1]
        assert event.mode == "replica"

    def test_checkpoint_mode_restores_snapshot(self, tiny_binary):
        driver = make_driver(
            tiny_binary, recovery=RecoveryPolicy(checkpoint_every=4), iterations=6
        )
        driver.fit()
        store = driver.recovery_manager.checkpoints
        owned = driver.groups.partitions_of_worker(1)
        snapshots = {p: np.array(store.snapshot_of(p)[1], copy=True) for p in owned}
        driver._recover_worker(1, iteration=6)
        for p in owned:
            assert np.array_equal(driver._partitions[p].params, snapshots[p])
        assert driver.cluster.engine_trace.recoveries[-1].mode == "checkpoint"

    def test_zero_init_fallback(self, tiny_binary):
        driver = make_driver(tiny_binary)
        driver.fit(iterations=5)
        driver._recover_worker(1, iteration=5)
        for p in driver.groups.partitions_of_worker(1):
            assert not driver._partitions[p].params.any()
        assert driver.cluster.engine_trace.recoveries[-1].mode == "zero-init"

    def test_recovery_seconds_positive(self, tiny_binary):
        driver = make_driver(tiny_binary)
        driver.fit(iterations=2)
        assert driver._recover_worker(2) > 0.0


class TestMasterRestart:
    def test_no_checkpoint_still_aborts(self, tiny_binary):
        driver = make_driver(
            tiny_binary, failures=FailureInjector.master_failure(3)
        )
        with pytest.raises(MasterFailedError):
            driver.fit()

    def test_restart_before_first_checkpoint_aborts(self, tiny_binary):
        # policy allows restart, but the crash can also be engineered
        # before iteration 0's checkpoint only via a fresh manager
        driver = make_driver(
            tiny_binary,
            recovery=RecoveryPolicy(checkpoint_every=5, master_restart=True),
        )
        driver.recovery_manager.checkpoints.last_iteration = None
        with pytest.raises(MasterFailedError):
            driver.recovery_manager.recover_master(3)

    def test_restart_replays_to_exact_trajectory(self, tiny_binary):
        """Restart + deterministic replay reproduces the clean run."""
        clean = make_driver(tiny_binary).fit()
        recovered = make_driver(
            tiny_binary,
            recovery=RecoveryPolicy(checkpoint_every=5, master_restart=True),
            failures=FailureInjector.master_failure(13),
        ).fit()
        assert np.allclose(
            clean.final_params, recovered.final_params, atol=1e-12
        )

    def test_restart_charges_reload_and_replay(self, tiny_binary):
        driver = make_driver(
            tiny_binary,
            recovery=RecoveryPolicy(checkpoint_every=5, master_restart=True),
            failures=FailureInjector.master_failure(13),
        )
        driver.fit()
        events = [
            e for e in driver.cluster.engine_trace.recoveries if e.kind == "master"
        ]
        assert len(events) == 1
        event = events[0]
        assert event.mode == "restart"
        assert event.reload_s > 0.0
        assert event.replay_s > 0.0  # iterations 10..12 replayed
        assert event.total_s == pytest.approx(
            event.detect_s + event.reload_s + event.replay_s
        )
