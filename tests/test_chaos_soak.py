"""Chaos soak: seeded random crashes + lossy links, protocol-checked.

The PR's acceptance suite: across >= 3 chaos seeds, LR and SVM on
ColumnSGD plus one RowSGD baseline train under a ChaosSchedule (Poisson
worker/task crashes) on a 1 %-drop FaultPlan with ``check_protocol=True``
— every round's Table-I byte audit must hold under loss, and training
must still converge within tolerance of the fault-free run.
"""

import numpy as np
import pytest

from repro.baselines import MLlibTrainer, RowSGDConfig
from repro.core import ColumnSGDConfig, ColumnSGDDriver, RecoveryPolicy
from repro.models import LinearSVM, LogisticRegression
from repro.net import FaultPlan, LinkFaults
from repro.optim import SGD
from repro.sim import CLUSTER1, ChaosSchedule, SimulatedCluster

CHAOS_SEEDS = (1, 2, 3)
MTBF_S = 0.4  # several crashes within a short soak run
DROP_PLAN = FaultPlan(default=LinkFaults(drop=0.01), seed=0)
# A chaos crash rolls the victim's partition back to the last
# checkpoint (at most 5 iterations stale), so the recovered trajectory
# tracks the clean one within a small margin.
LOSS_TOLERANCE = 0.15


def run_columnsgd(data, model, failures=None, fault_plan=None):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4), fault_plan=fault_plan)
    config = ColumnSGDConfig(
        batch_size=64, iterations=30, eval_every=10, seed=9, block_size=64,
        check_protocol=True,
    )
    driver = ColumnSGDDriver(
        model, SGD(1.0), cluster, config=config, failures=failures,
        recovery=RecoveryPolicy(checkpoint_every=5),
    )
    driver.load(data)
    return driver.fit(), cluster


def run_mllib(data, failures=None, fault_plan=None):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4), fault_plan=fault_plan)
    config = RowSGDConfig(
        batch_size=64, iterations=30, eval_every=10, seed=9, check_protocol=True
    )
    trainer = MLlibTrainer(
        LogisticRegression(), SGD(1.0), cluster, config=config, failures=failures
    )
    trainer.load(data)
    return trainer.fit(), cluster


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize(
    "model_factory", [LogisticRegression, LinearSVM], ids=["lr", "svm"]
)
def test_columnsgd_soak(tiny_binary, seed, model_factory):
    clean, _ = run_columnsgd(tiny_binary, model_factory())
    chaos = ChaosSchedule(mtbf_s=MTBF_S, seed=seed)
    faulted, cluster = run_columnsgd(
        tiny_binary, model_factory(), failures=chaos, fault_plan=DROP_PLAN
    )
    # the protocol checker already raised on any Table-I violation;
    # confirm the fault layer actually exercised both fault classes
    assert cluster.network.dropped > 0
    assert cluster.engine_trace.recoveries  # at least one chaos crash
    assert faulted.n_iterations >= 30
    assert np.isfinite(faulted.final_loss())
    assert faulted.final_loss() <= clean.final_loss() + LOSS_TOLERANCE


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_rowsgd_baseline_soak(tiny_binary, seed):
    clean, _ = run_mllib(tiny_binary)
    chaos = ChaosSchedule(mtbf_s=MTBF_S, seed=seed)
    faulted, cluster = run_mllib(tiny_binary, failures=chaos, fault_plan=DROP_PLAN)
    assert cluster.network.dropped > 0
    assert faulted.n_iterations >= 30
    # RowSGD's central model survives worker crashes untouched: the
    # trajectory is numerically identical, only sim-time differs
    assert faulted.final_loss() == pytest.approx(clean.final_loss(), abs=1e-12)
    assert faulted.total_sim_time > clean.total_sim_time


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_runs_are_reproducible(tiny_binary, seed):
    """Same seed, same crashes, same byte counters, same trajectory."""
    a, cluster_a = run_columnsgd(
        tiny_binary,
        LogisticRegression(),
        failures=ChaosSchedule(mtbf_s=MTBF_S, seed=seed),
        fault_plan=DROP_PLAN,
    )
    b, cluster_b = run_columnsgd(
        tiny_binary,
        LogisticRegression(),
        failures=ChaosSchedule(mtbf_s=MTBF_S, seed=seed),
        fault_plan=DROP_PLAN,
    )
    assert np.array_equal(a.final_params, b.final_params)
    assert a.total_sim_time == b.total_sim_time
    assert cluster_a.network.snapshot() == cluster_b.network.snapshot()
    assert cluster_a.network.dropped == cluster_b.network.dropped
