"""Tests for K-fold cross-validation."""

import pytest

from repro.core import train_columnsgd
from repro.datasets import make_classification
from repro.metrics import cross_validate, evaluate_classifier
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


@pytest.fixture(scope="module")
def data():
    return make_classification(900, 200, nnz_per_row=8, seed=70)


def train_fn(train_split):
    result = train_columnsgd(
        train_split, LogisticRegression(), SGD(1.0),
        SimulatedCluster(CLUSTER1.with_workers(4)),
        batch_size=128, iterations=40, eval_every=0, block_size=256,
    )
    return result.final_params


class TestCrossValidate:
    def test_full_report_shape(self, data):
        report = cross_validate(
            data, train_fn, LogisticRegression(), evaluate_classifier,
            k=3, seed=1,
        )
        assert set(report) == {"accuracy", "auc", "log_loss"}
        for stats in report.values():
            assert set(stats) == {"mean", "std", "folds"}
            assert len(stats["folds"]) == 3

    def test_held_out_accuracy_beats_chance(self, data):
        report = cross_validate(
            data, train_fn, LogisticRegression(), evaluate_classifier,
            k=3, seed=1,
        )
        assert report["accuracy"]["mean"] > 0.6
        assert report["auc"]["mean"] > 0.65

    def test_mean_matches_folds(self, data):
        report = cross_validate(
            data, train_fn, LogisticRegression(), evaluate_classifier,
            k=3, seed=2,
        )
        accuracy = report["accuracy"]
        assert accuracy["mean"] == pytest.approx(
            sum(accuracy["folds"]) / len(accuracy["folds"])
        )

    def test_deterministic(self, data):
        a = cross_validate(data, train_fn, LogisticRegression(),
                           evaluate_classifier, k=3, seed=3)
        b = cross_validate(data, train_fn, LogisticRegression(),
                           evaluate_classifier, k=3, seed=3)
        assert a == b
