"""Tests for the sparsity-safety analysis (rules R015-R017) and the
lint CLI additions that rode along (--stats, rule-id ranges)."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint import LintEngine
from repro.lint.cli import _split_ids, main as lint_main
from repro.lint.sparsity import (
    CLASS_NAMES,
    CostInference,
    O1,
    OB,
    OD,
    ONNZ,
    PRIMITIVE_COSTS,
    classify_size_expr,
    classify_size_name,
    np_alloc_class,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
PROGRAM_FIXTURES = Path(__file__).resolve().parent / "lint_fixtures" / "program"

SPARSITY_RULES = ("R015", "R016", "R017")


def lint_program_fixture(name: str, rule_id: str):
    engine = LintEngine(select=[rule_id])
    return engine.lint_paths([str(PROGRAM_FIXTURES / name)])


# ----------------------------------------------------------------------
# lattice and classifiers
# ----------------------------------------------------------------------
def test_lattice_order():
    assert O1 < OB < ONNZ < OD
    assert set(CLASS_NAMES) == {O1, OB, ONNZ, OD}


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("nnz", ONNZ),
        ("batch_nnz", ONNZ),
        ("global_indices", ONNZ),
        ("dim", OD),
        ("local_dim", OD),
        ("n_features", OD),
        ("model_elements", OD),
        ("n_workers", O1),
        ("width", O1),
        ("statistics_width", O1),
        ("batch_size", OB),
        ("rows", OB),
        ("self", O1),  # receivers never classify as size terms
    ],
)
def test_classify_size_name(name, expected):
    assert classify_size_name(name) == expected


def test_classify_size_expr_joins_identifiers():
    expr = ast.parse("self.dim * width + batch_size", mode="eval").body
    assert classify_size_expr(expr) == OD
    expr = ast.parse("local.nnz * 2", mode="eval").body
    assert classify_size_expr(expr) == ONNZ
    expr = ast.parse("64", mode="eval").body
    assert classify_size_expr(expr) == O1


@pytest.mark.parametrize(
    ("source", "expected"),
    [
        ("np.zeros(self.dim)", OD),
        ("np.zeros(batch_size)", OB),
        ("np.zeros_like(self._params)", OD),
        ("np.zeros_like(scores)", OB),
        ("np.zeros_like(self._w)", OD),
        ("np.empty(width)", O1),
        ("np.dot(a, b)", None),  # not an allocation
        ("torch.zeros(dim)", None),  # not a numpy root
    ],
)
def test_np_alloc_class(source, expected):
    call = ast.parse(source, mode="eval").body
    from repro.lint.engine import dotted_name

    assert np_alloc_class(call, dotted_name(call.func)) == expected


def test_primitive_table_covers_the_densifiers():
    assert PRIMITIVE_COSTS["to_dense"] == OD
    assert PRIMITIVE_COSTS["hstack_from_partitions"] == OD
    assert PRIMITIVE_COSTS["dot"] == ONNZ
    # ambiguous names must stay out (dict.items(), np.empty collisions)
    assert "items" not in PRIMITIVE_COSTS
    assert "empty" not in PRIMITIVE_COSTS


def test_trip_class():
    def trip(source):
        return CostInference._trip_class(ast.parse(source, mode="eval").body)

    assert trip("range(self.dim)") == OD
    assert trip("range(n_workers)") == O1
    assert trip("batch.iter_rows()") == ONNZ
    assert trip("enumerate(range(self.dim))") == OD
    assert trip("some_list") == OB


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", SPARSITY_RULES)
def test_trigger_fixture_fires(rule_id):
    name = "{}_trigger.py".format(rule_id.lower())
    findings = lint_program_fixture(name, rule_id)
    assert findings, "{} produced no {} findings".format(name, rule_id)
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", SPARSITY_RULES)
def test_pass_fixture_is_clean(rule_id):
    name = "{}_pass.py".format(rule_id.lower())
    assert lint_program_fixture(name, rule_id) == []


def test_trigger_counts():
    """Pin the exact violation count each trigger fixture encodes."""
    expected = {"R015": 3, "R016": 1, "R017": 2}
    for rule_id, count in expected.items():
        name = "{}_trigger.py".format(rule_id.lower())
        findings = lint_program_fixture(name, rule_id)
        assert len(findings) == count, (rule_id, [f.render() for f in findings])


def test_r015_messages_carry_witness_chains():
    findings = lint_program_fixture("r015_trigger.py", "R015")
    assert all("via " in f.message for f in findings)
    coercions = [f for f in findings if "coerced dense" in f.message]
    assert len(coercions) == 1
    # the coercion sits in a helper, so its chain crosses a call edge
    assert "_phase_update -> _merge" in coercions[0].message


def test_r016_message_names_both_classes():
    (finding,) = lint_program_fixture("r016_trigger.py", "R016")
    assert "O(d)" in finding.message and "O(nnz)" in finding.message


def test_source_tree_is_sparsity_clean():
    """The real tree passes R015-R017 (reviewed sites carry noqa)."""
    engine = LintEngine(select=list(SPARSITY_RULES))
    assert engine.lint_paths([str(SRC)]) == []


# ----------------------------------------------------------------------
# CLI: ranges and --stats
# ----------------------------------------------------------------------
def test_split_ids_expands_ranges():
    assert _split_ids("R012-R014") == ["R012", "R013", "R014"]
    assert _split_ids("R001,R015-R017") == ["R001", "R015", "R016", "R017"]
    assert _split_ids("R012-14") == ["R012", "R013", "R014"]
    # malformed ranges pass through and hit the unknown-id usage error
    assert _split_ids("R014-R012") == ["R014-R012"]
    assert _split_ids("R012-E014") == ["R012-E014"]
    assert _split_ids(None) is None


def test_cli_accepts_rule_ranges(capsys):
    rc = lint_main(
        [str(PROGRAM_FIXTURES / "r016_pass.py"), "--select", "R015-R017"]
    )
    capsys.readouterr()
    assert rc == 0


def test_cli_rejects_malformed_range(capsys):
    rc = lint_main(
        [str(PROGRAM_FIXTURES / "r016_pass.py"), "--select", "R017-R015"]
    )
    captured = capsys.readouterr()
    assert rc == 2
    assert "unknown rule id" in captured.err


def test_cli_stats_prints_per_rule_timings(capsys):
    rc = lint_main(
        [
            str(PROGRAM_FIXTURES / "r016_pass.py"),
            "--select", "R015,R016",
            "--stats",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "rule timings" in captured.err
    assert "R015" in captured.err and "R016" in captured.err
    assert "total" in captured.err
    # stdout stays clean for machine formats
    assert "rule timings" not in captured.out


def test_stats_off_by_default():
    engine = LintEngine(select=["R015"])
    engine.lint_paths([str(PROGRAM_FIXTURES / "r015_pass.py")])
    assert engine.stats == {}
