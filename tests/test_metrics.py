"""Unit tests for repro.metrics."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_regression
from repro.errors import DataError
from repro.metrics import (
    accuracy,
    confusion_counts,
    evaluate_classifier,
    evaluate_regressor,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    rmse,
    roc_auc,
    train_test_split,
)


LABELS = np.array([1.0, 1.0, -1.0, -1.0])
PROBS = np.array([0.9, 0.4, 0.2, 0.6])


class TestAccuracy:
    def test_value(self):
        assert accuracy(LABELS, PROBS) == pytest.approx(0.5)

    def test_threshold(self):
        assert accuracy(LABELS, PROBS, threshold=0.3) == pytest.approx(0.75)

    def test_perfect(self):
        assert accuracy(LABELS, np.array([0.9, 0.8, 0.1, 0.2])) == 1.0

    def test_rejects_bad_labels(self):
        with pytest.raises(DataError):
            accuracy(np.array([0.0, 1.0]), np.array([0.5, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            accuracy(np.array([]), np.array([]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            accuracy(np.array([1.0]), np.array([0.5, 0.5]))


class TestLogLoss:
    def test_perfect_is_zero(self):
        assert log_loss(np.array([1.0, -1.0]), np.array([1.0, 0.0])) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_uninformative_is_log2(self):
        assert log_loss(LABELS, np.full(4, 0.5)) == pytest.approx(np.log(2))

    def test_clipping_prevents_inf(self):
        value = log_loss(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(value)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc(LABELS, np.array([0.9, 0.8, 0.1, 0.2])) == 1.0

    def test_reversed_ranking(self):
        assert roc_auc(LABELS, np.array([0.1, 0.2, 0.9, 0.8])) == 0.0

    def test_random_is_half(self, rng):
        labels = rng.choice([-1.0, 1.0], 2000)
        scores = rng.random(2000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_midranks(self):
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            roc_auc(np.array([1.0, 1.0]), np.array([0.5, 0.6]))

    def test_invariant_to_monotone_transform(self, rng):
        labels = rng.choice([-1.0, 1.0], 300)
        scores = rng.normal(size=300)
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, np.exp(scores)), abs=1e-12
        )


class TestConfusionAndF1:
    def test_counts(self):
        counts = confusion_counts(LABELS, PROBS)
        assert counts == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}
        assert sum(counts.values()) == 4

    def test_prf(self):
        prf = precision_recall_f1(LABELS, PROBS)
        assert prf["precision"] == pytest.approx(0.5)
        assert prf["recall"] == pytest.approx(0.5)
        assert prf["f1"] == pytest.approx(0.5)

    def test_degenerate_returns_zero(self):
        prf = precision_recall_f1(np.array([1.0, 1.0]), np.array([0.1, 0.2]))
        assert prf["precision"] == 0.0
        assert prf["f1"] == 0.0


class TestRegressionMetrics:
    def test_mse_rmse(self):
        labels = np.array([1.0, 2.0])
        preds = np.array([1.0, 4.0])
        assert mean_squared_error(labels, preds) == pytest.approx(2.0)
        assert rmse(labels, preds) == pytest.approx(np.sqrt(2.0))

    def test_mae(self):
        assert mean_absolute_error(np.array([1.0, -1.0]), np.array([0.0, 0.0])) == 1.0

    def test_r2_perfect(self):
        labels = np.array([1.0, 2.0, 3.0])
        assert r2_score(labels, labels) == 1.0

    def test_r2_mean_predictor(self):
        labels = np.array([1.0, 2.0, 3.0])
        assert r2_score(labels, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_labels(self):
        labels = np.full(3, 5.0)
        assert r2_score(labels, labels) == 1.0
        assert r2_score(labels, labels + 1) == 0.0


class TestSplit:
    def test_sizes(self, tiny_binary):
        train, test = train_test_split(tiny_binary, test_fraction=0.2, seed=1)
        assert test.n_rows == 60
        assert train.n_rows == 240

    def test_deterministic(self, tiny_binary):
        a = train_test_split(tiny_binary, seed=2)
        b = train_test_split(tiny_binary, seed=2)
        assert np.array_equal(a[0].labels, b[0].labels)

    def test_no_shuffle_is_prefix_suffix(self, tiny_binary):
        train, test = train_test_split(tiny_binary, test_fraction=0.1, shuffle=False)
        assert np.array_equal(test.labels, tiny_binary.labels[:30])

    def test_never_empty(self, tiny_binary):
        train, test = train_test_split(tiny_binary, test_fraction=0.0)
        assert test.n_rows == 1
        train, test = train_test_split(tiny_binary, test_fraction=1.0)
        assert train.n_rows == 1

    def test_too_small(self, tiny_binary):
        with pytest.raises(ValueError):
            train_test_split(tiny_binary.slice(0, 1))


class TestEvaluateBundles:
    def test_classifier_report(self):
        from repro.core import train_columnsgd
        from repro.models import LogisticRegression
        from repro.optim import SGD
        from repro.sim import CLUSTER1, SimulatedCluster

        data = make_classification(1500, 200, nnz_per_row=10, seed=9)
        train, test = train_test_split(data, test_fraction=0.25, seed=9)
        result = train_columnsgd(
            train, LogisticRegression(), SGD(1.0),
            SimulatedCluster(CLUSTER1.with_workers(4)),
            batch_size=200, iterations=80, eval_every=0, block_size=256,
        )
        report = evaluate_classifier(LogisticRegression(), result.final_params, test)
        assert report["accuracy"] > 0.7
        assert report["auc"] > 0.75
        assert report["log_loss"] < np.log(2)

    def test_regressor_report(self):
        from repro.models import LeastSquares

        data = make_regression(500, 50, nnz_per_row=8, noise_std=0.01, seed=10)
        model = LeastSquares()
        params = model.init_params(50)
        for t in range(300):
            params -= 0.1 * model.gradient(data.features, data.labels, params)
        report = evaluate_regressor(model, params, data)
        assert report["rmse"] < 0.5
        assert report["r2"] > 0.9
