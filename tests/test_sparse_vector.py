"""Unit tests for repro.linalg.SparseVector."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.linalg import SparseVector


class TestConstruction:
    def test_sorts_indices(self):
        v = SparseVector([5, 1, 3], [1.0, 2.0, 3.0], 10)
        assert v.indices.tolist() == [1, 3, 5]
        assert v.values.tolist() == [2.0, 3.0, 1.0]

    def test_drops_explicit_zeros(self):
        v = SparseVector([0, 1, 2], [1.0, 0.0, 3.0], 5)
        assert v.nnz == 2
        assert v.indices.tolist() == [0, 2]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseVector([1, 1], [1.0, 2.0], 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="indices"):
            SparseVector([5], [1.0], 5)
        with pytest.raises(ValueError):
            SparseVector([-1], [1.0], 5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            SparseVector([1, 2], [1.0], 5)

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError, match="dim"):
            SparseVector([], [], -1)

    def test_empty(self):
        v = SparseVector.empty(7)
        assert v.dim == 7
        assert v.nnz == 0
        assert np.array_equal(v.to_dense(), np.zeros(7))

    def test_from_dict(self):
        v = SparseVector.from_dict({3: 1.5, 0: -2.0}, 6)
        assert v.indices.tolist() == [0, 3]
        assert v.values.tolist() == [-2.0, 1.5]

    def test_from_dict_empty(self):
        assert SparseVector.from_dict({}, 4).nnz == 0

    def test_from_dense_roundtrip(self):
        dense = np.array([0.0, 1.0, 0.0, -3.0])
        v = SparseVector.from_dense(dense)
        assert np.array_equal(v.to_dense(), dense)

    def test_from_dense_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            SparseVector.from_dense(np.zeros((2, 2)))


class TestOperations:
    def test_dot_matches_dense(self):
        v = SparseVector([0, 2, 4], [1.0, 2.0, 3.0], 5)
        w = np.array([1.0, 10.0, 2.0, 10.0, -1.0])
        assert v.dot(w) == pytest.approx(1.0 + 4.0 - 3.0)

    def test_dot_empty_is_zero(self):
        assert SparseVector.empty(4).dot(np.ones(4)) == 0.0

    def test_dot_shape_check(self):
        v = SparseVector([0], [1.0], 3)
        with pytest.raises(DimensionMismatchError):
            v.dot(np.ones(4))

    def test_scale(self):
        v = SparseVector([1, 2], [2.0, -4.0], 5)
        assert v.scale(0.5).values.tolist() == [1.0, -2.0]

    def test_scale_by_zero_empties(self):
        v = SparseVector([1], [2.0], 5)
        assert v.scale(0.0).nnz == 0

    def test_norm_sq(self):
        v = SparseVector([0, 1], [3.0, 4.0], 5)
        assert v.norm_sq() == pytest.approx(25.0)

    def test_restrict_reindexes(self):
        v = SparseVector([1, 3, 5, 7], [1.0, 2.0, 3.0, 4.0], 10)
        sub = v.restrict(np.array([3, 5, 9]), 3)
        assert sub.dim == 3
        assert sub.indices.tolist() == [0, 1]
        assert sub.values.tolist() == [2.0, 3.0]

    def test_restrict_empty_subset(self):
        v = SparseVector([1], [1.0], 4)
        assert v.restrict(np.array([], dtype=int), 0).nnz == 0

    def test_items_order(self):
        v = SparseVector([4, 0], [1.0, 2.0], 5)
        assert list(v.items()) == [(0, 2.0), (4, 1.0)]


class TestDunder:
    def test_len_is_dim(self):
        assert len(SparseVector.empty(9)) == 9

    def test_equality(self):
        a = SparseVector([1], [2.0], 5)
        b = SparseVector([1], [2.0], 5)
        c = SparseVector([1], [2.0], 6)
        assert a == b
        assert a != c

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SparseVector.empty(3))

    def test_repr_mentions_nnz(self):
        assert "nnz=1" in repr(SparseVector([0], [1.0], 3))
