"""Tests for the column-partitioned MLP extension (Section III-C)."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.extensions import ColumnMLP, MLPColumnTrainer, SequentialMLP
from repro.linalg import CSRMatrix
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


def xor_like_dataset(n_rows=600, seed=0):
    """A dataset a linear model cannot fit: XOR over two dense features
    embedded in a sparse space."""
    rng = np.random.default_rng(seed)
    x = rng.choice([-1.0, 1.0], size=(n_rows, 2))
    labels = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    noise = rng.normal(0, 0.1, size=(n_rows, 6))
    dense = np.column_stack([x, noise])
    return Dataset(CSRMatrix.from_dense(dense), labels, name="xor")


class TestColumnMLPMath:
    def test_statistics_additive_over_column_shards(self, tiny_gaussian):
        model = ColumnMLP(hidden=4)
        w1 = model.init_w1(tiny_gaussian.n_features, seed=1)
        full = model.partial_statistics(tiny_gaussian.features, w1)
        cols_a = np.arange(0, tiny_gaussian.n_features, 2)
        cols_b = np.arange(1, tiny_gaussian.n_features, 2)
        part = model.partial_statistics(
            tiny_gaussian.features.select_columns(cols_a), w1[cols_a]
        ) + model.partial_statistics(
            tiny_gaussian.features.select_columns(cols_b), w1[cols_b]
        )
        assert np.allclose(full, part, atol=1e-10)

    def test_gradients_match_finite_differences(self):
        data = xor_like_dataset(50, seed=2)
        model = ColumnMLP(hidden=3)
        w1 = model.init_w1(data.n_features, seed=3)
        head = model.init_head(seed=3)

        def loss_at(w1_, head_):
            z = model.partial_statistics(data.features, w1_)
            return model.loss_from_statistics(z, data.labels, head_)

        z = model.partial_statistics(data.features, w1)
        a, c, delta = model.backward(z, data.labels, head)
        grad_w1 = model.w1_gradient(data.features, delta, data.n_rows)
        head_grads = model.head_gradients(a, c, delta, data.n_rows)

        eps = 1e-6
        # W1 entries
        for idx in [(0, 0), (1, 2), (5, 1)]:
            up = w1.copy(); up[idx] += eps
            down = w1.copy(); down[idx] -= eps
            numeric = (loss_at(up, head) - loss_at(down, head)) / (2 * eps)
            assert grad_w1[idx] == pytest.approx(numeric, abs=1e-6)
        # head entries
        for key in ("w2", "b1", "b2"):
            for i in range(head[key].size):
                up = {k: v.copy() for k, v in head.items()}
                down = {k: v.copy() for k, v in head.items()}
                up[key][i] += eps
                down[key][i] -= eps
                numeric = (loss_at(w1, up) - loss_at(w1, down)) / (2 * eps)
                assert head_grads[key][i] == pytest.approx(numeric, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnMLP(hidden=0)


class TestDistributedMLP:
    def test_matches_sequential_reference(self, tiny_gaussian):
        model = ColumnMLP(hidden=4)
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        trainer = MLPColumnTrainer(
            model, SGD(0.1), cluster, batch_size=32, iterations=10,
            eval_every=0, seed=7, block_size=64,
        )
        trainer.load(tiny_gaussian)
        trainer.fit()

        reference = SequentialMLP(ColumnMLP(hidden=4), SGD(0.1),
                                  tiny_gaussian.n_features, seed=7)
        index = trainer._index
        for t in range(10):
            rows = index.to_global_rows(index.sample(t, 32))
            batch = tiny_gaussian.take(rows)
            reference.step(batch.features, batch.labels, t)

        assert np.allclose(trainer.current_w1(), reference.w1, atol=1e-9)
        for key in ("w2", "b1", "b2"):
            assert np.allclose(trainer.head()[key], reference.head[key], atol=1e-9)

    def test_solves_xor_where_lr_cannot(self):
        data = xor_like_dataset(600, seed=4)
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        trainer = MLPColumnTrainer(
            ColumnMLP(hidden=8), SGD(0.5), cluster, batch_size=128,
            iterations=400, eval_every=50, seed=4, block_size=128,
        )
        trainer.load(data)
        result = trainer.fit()
        assert result.final_loss() < 0.3  # LR stalls at ~log(2)=0.69

        from repro.core import train_columnsgd
        from repro.models import LogisticRegression

        lr_result = train_columnsgd(
            data, LogisticRegression(), SGD(0.5),
            SimulatedCluster(CLUSTER1.with_workers(2)),
            batch_size=128, iterations=400, eval_every=50, seed=4, block_size=128,
        )
        assert lr_result.final_loss() > 0.6

    def test_statistics_traffic_is_batch_times_hidden(self, tiny_gaussian):
        hidden_sizes = (2, 8)
        traffic = {}
        for hidden in hidden_sizes:
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            trainer = MLPColumnTrainer(
                ColumnMLP(hidden=hidden), SGD(0.1), cluster, batch_size=32,
                iterations=3, eval_every=0, seed=1, block_size=64,
            )
            trainer.load(tiny_gaussian)
            result = trainer.fit()
            traffic[hidden] = result.records[-1].bytes_sent
        assert traffic[8] > 3 * traffic[2]

    def test_fit_without_load_raises(self):
        from repro.errors import TrainingError

        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        trainer = MLPColumnTrainer(ColumnMLP(hidden=2), SGD(0.1), cluster)
        with pytest.raises(TrainingError):
            trainer.fit()
