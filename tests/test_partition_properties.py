"""Property-based tests on partitioning and sampling components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import TwoPhaseIndex, make_assignment
from repro.storage.blocks import split_into_blocks
from repro.storage.serialization import (
    csr_matrix_bytes,
    dense_vector_bytes,
    sparse_row_bytes,
)


class TestAssignmentProperties:
    @given(
        m=st.integers(1, 500),
        k=st.integers(1, 32),
        scheme=st.sampled_from(["round_robin", "range", "hash"]),
    )
    @settings(max_examples=80)
    def test_partition_of_columns(self, m, k, scheme):
        """Every column is owned by exactly one worker, and ownership is
        consistent between columns_of and worker_of."""
        if k > m:
            return
        asg = make_assignment(scheme, m, k)
        owners = asg.worker_of(np.arange(m))
        assert owners.min() >= 0 and owners.max() < k
        total = 0
        for w in range(k):
            cols = asg.columns_of(w)
            total += cols.size
            assert np.all(owners[cols] == w)
        assert total == m

    @given(m=st.integers(2, 400), k=st.integers(1, 16))
    @settings(max_examples=50)
    def test_round_robin_balance_tight(self, m, k):
        if k > m:
            return
        dims = make_assignment("round_robin", m, k).local_dims()
        assert max(dims) - min(dims) <= 1


class TestBlockProperties:
    @given(n=st.integers(0, 5000), size=st.integers(1, 512))
    @settings(max_examples=80)
    def test_blocks_tile_rows_exactly(self, n, size):
        blocks = split_into_blocks(n, size)
        assert sum(b.n_rows for b in blocks) == n
        cursor = 0
        for b in blocks:
            assert b.start == cursor
            cursor = b.stop
        assert cursor == n

    @given(n=st.integers(1, 5000), size=st.integers(1, 512))
    @settings(max_examples=50)
    def test_all_blocks_full_except_last(self, n, size):
        blocks = split_into_blocks(n, size)
        for b in blocks[:-1]:
            assert b.n_rows == size
        assert 1 <= blocks[-1].n_rows <= size


class TestIndexProperties:
    @given(
        sizes=st.lists(st.integers(1, 50), min_size=1, max_size=10),
        seed=st.integers(0, 1000),
        batch=st.integers(1, 64),
        iteration=st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_draws_valid_and_deterministic(self, sizes, seed, batch, iteration):
        layout = {i: s for i, s in enumerate(sizes)}
        index = TwoPhaseIndex(layout, base_seed=seed)
        draws = index.sample(iteration, batch)
        assert draws == TwoPhaseIndex(layout, base_seed=seed).sample(iteration, batch)
        assert len(draws) == batch
        for block_id, offset in draws:
            assert 0 <= offset < layout[block_id]
        rows = index.to_global_rows(draws)
        assert rows.min() >= 0 and rows.max() < sum(sizes)

    @given(
        sizes=st.lists(st.integers(1, 50), min_size=1, max_size=8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30)
    def test_global_rows_bijective_with_draws(self, sizes, seed):
        """(block, offset) -> global row is injective over the layout."""
        layout = {i: s for i, s in enumerate(sizes)}
        index = TwoPhaseIndex(layout, base_seed=seed)
        all_draws = [(b, o) for b, s in layout.items() for o in range(s)]
        rows = index.to_global_rows(all_draws)
        assert len(set(rows.tolist())) == sum(sizes)


class TestSerializationProperties:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_sizes_monotone_in_nnz(self, a, b):
        lo, hi = sorted((a, b))
        assert sparse_row_bytes(lo) <= sparse_row_bytes(hi)
        assert csr_matrix_bytes(10, lo) <= csr_matrix_bytes(10, hi)
        assert dense_vector_bytes(lo) <= dense_vector_bytes(hi)

    @given(st.integers(1, 1000), st.integers(0, 50_000))
    @settings(max_examples=60)
    def test_csr_never_worse_than_per_row_objects(self, rows, nnz):
        """The compression claim behind Fig 7, as a universal property."""
        per_row = rows * sparse_row_bytes(max(nnz // rows, 0))
        assert csr_matrix_bytes(rows, (nnz // rows) * rows, with_labels=True) <= per_row + sparse_row_bytes(0)
