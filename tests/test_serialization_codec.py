"""Codec tests: lossless round-trips and byte-model-exact lengths.

The invariant the local backend rests on: for every payload type,
``len(encode_payload(p)) == p.encoded_bytes()``, with ``encoded_bytes``
defined by the same size functions the simulator charges — so the bytes
that cross a real pipe are exactly the bytes the cost model predicts.
"""

import numpy as np
import pytest

from repro.net.message import MessageKind
from repro.storage.serialization import (
    CSRBlockPayload,
    DenseVectorPayload,
    IntVectorPayload,
    OBJECT_OVERHEAD_BYTES,
    SparseVectorPayload,
    WorksetPayload,
    csr_matrix_bytes,
    decode_payload,
    dense_vector_bytes,
    encode_payload,
    int_vector_bytes,
    sparse_vector_bytes,
    workset_bytes,
)


def rng():
    return np.random.default_rng(7)


def make_csr(n_rows=6, nnz=17, with_labels=False, seed=7):
    r = np.random.default_rng(seed)
    splits = np.sort(r.integers(0, nnz + 1, size=n_rows - 1))
    indptr = np.concatenate([[0], splits, [nnz]]).astype(np.int32)
    return CSRBlockPayload(
        indptr=indptr,
        indices=r.integers(0, 100, size=nnz).astype(np.int32),
        data=r.standard_normal(nnz),
        labels=r.standard_normal(n_rows) if with_labels else None,
    )


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_dense_fp64_is_bit_exact(self):
        values = rng().standard_normal(33)
        out = decode_payload(encode_payload(DenseVectorPayload(values)))
        assert out.precision == "fp64"
        assert out.values.dtype == np.float64
        np.testing.assert_array_equal(out.values, values)

    def test_dense_fp32_rounds_like_the_simulated_wire(self):
        values = rng().standard_normal(33)
        payload = DenseVectorPayload(values, precision="fp32")
        out = decode_payload(encode_payload(payload))
        assert out.precision == "fp32"
        # float64 values that went through float32 — _through_wire's rule
        np.testing.assert_array_equal(
            out.values, values.astype(np.float32).astype(np.float64)
        )

    def test_sparse(self):
        r = rng()
        payload = SparseVectorPayload(
            indices=r.integers(0, 1000, size=21).astype(np.int32),
            values=r.standard_normal(21),
        )
        out = decode_payload(encode_payload(payload))
        np.testing.assert_array_equal(out.indices, payload.indices)
        np.testing.assert_array_equal(out.values, payload.values)

    @pytest.mark.parametrize("with_labels", (False, True))
    def test_csr(self, with_labels):
        payload = make_csr(with_labels=with_labels)
        out = decode_payload(encode_payload(payload))
        np.testing.assert_array_equal(out.indptr, payload.indptr)
        np.testing.assert_array_equal(out.indices, payload.indices)
        np.testing.assert_array_equal(out.data, payload.data)
        if with_labels:
            np.testing.assert_array_equal(out.labels, payload.labels)
        else:
            assert out.labels is None

    def test_workset(self):
        payload = WorksetPayload(block_id=42, block=make_csr(with_labels=True))
        out = decode_payload(encode_payload(payload))
        assert out.block_id == 42
        np.testing.assert_array_equal(out.block.data, payload.block.data)
        np.testing.assert_array_equal(out.block.labels, payload.block.labels)

    def test_int_vector(self):
        payload = IntVectorPayload(np.array([0, 5, 2**40, -3], dtype=np.int64))
        out = decode_payload(encode_payload(payload))
        assert out.values.dtype == np.int64
        np.testing.assert_array_equal(out.values, payload.values)

    def test_empty_vectors(self):
        for payload in (
            DenseVectorPayload(np.zeros(0)),
            SparseVectorPayload(
                np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.float64)
            ),
            IntVectorPayload(np.zeros(0, dtype=np.int64)),
        ):
            encoded = encode_payload(payload)
            assert len(encoded) == OBJECT_OVERHEAD_BYTES
            assert decode_payload(encoded).values.size == 0


# ----------------------------------------------------------------------
# the byte-model agreement
# ----------------------------------------------------------------------
class TestByteModel:
    def test_dense_fp64(self):
        p = DenseVectorPayload(rng().standard_normal(57))
        assert len(encode_payload(p)) == p.encoded_bytes() == dense_vector_bytes(57)

    def test_dense_fp32_halves_the_body(self):
        p64 = DenseVectorPayload(rng().standard_normal(40))
        p32 = DenseVectorPayload(p64.values, precision="fp32")
        assert len(encode_payload(p32)) == p32.encoded_bytes()
        assert len(encode_payload(p32)) - OBJECT_OVERHEAD_BYTES == (
            len(encode_payload(p64)) - OBJECT_OVERHEAD_BYTES
        ) // 2

    def test_sparse(self):
        r = rng()
        p = SparseVectorPayload(
            r.integers(0, 99, size=13).astype(np.int32), r.standard_normal(13)
        )
        assert len(encode_payload(p)) == p.encoded_bytes() == sparse_vector_bytes(13)

    @pytest.mark.parametrize("with_labels", (False, True))
    def test_csr(self, with_labels):
        p = make_csr(n_rows=9, nnz=23, with_labels=with_labels)
        assert (
            len(encode_payload(p))
            == p.encoded_bytes()
            == csr_matrix_bytes(9, 23, with_labels=with_labels)
        )

    def test_workset(self):
        p = WorksetPayload(block_id=3, block=make_csr(n_rows=9, nnz=23, with_labels=True))
        assert len(encode_payload(p)) == p.encoded_bytes() == workset_bytes(9, 23)

    def test_int_vector(self):
        p = IntVectorPayload(np.arange(11, dtype=np.int64))
        assert len(encode_payload(p)) == p.encoded_bytes() == int_vector_bytes(11)


#: Every wire-bearing MessageKind has a codec representative: the
#: payload shape that kind actually moves in the trainers.
KIND_REPRESENTATIVES = {
    MessageKind.MODEL_PULL: lambda: DenseVectorPayload(rng().standard_normal(80)),
    MessageKind.GRADIENT_PUSH: lambda: DenseVectorPayload(rng().standard_normal(80)),
    MessageKind.STATISTICS_PUSH: lambda: DenseVectorPayload(rng().standard_normal(64)),
    MessageKind.STATISTICS_BCAST: lambda: DenseVectorPayload(rng().standard_normal(64)),
    MessageKind.MODEL_AVG: lambda: DenseVectorPayload(rng().standard_normal(80)),
    MessageKind.WORKSET: lambda: WorksetPayload(
        block_id=1, block=make_csr(with_labels=True)
    ),
    MessageKind.BLOCK_ASSIGN: lambda: IntVectorPayload(np.arange(5, dtype=np.int64)),
    MessageKind.CONTROL: lambda: IntVectorPayload(np.zeros(0, dtype=np.int64)),
    MessageKind.RETRY: lambda: DenseVectorPayload(rng().standard_normal(64)),
    MessageKind.HEARTBEAT: lambda: IntVectorPayload(np.zeros(0, dtype=np.int64)),
    MessageKind.CHECKPOINT: lambda: DenseVectorPayload(rng().standard_normal(128)),
}


@pytest.mark.parametrize(
    "kind", sorted(KIND_REPRESENTATIVES, key=lambda k: k.value),
    ids=lambda k: k.value,
)
def test_every_message_kind_has_a_model_exact_representative(kind):
    payload = KIND_REPRESENTATIVES[kind]()
    encoded = encode_payload(payload)
    assert len(encoded) == payload.encoded_bytes()
    decoded = decode_payload(encoded)
    assert type(decoded) is type(payload)


def test_representatives_cover_all_kinds():
    assert set(KIND_REPRESENTATIVES) == set(MessageKind)


# ----------------------------------------------------------------------
# validation and errors
# ----------------------------------------------------------------------
class TestErrors:
    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            DenseVectorPayload(np.zeros(3), precision="fp16")

    def test_mismatched_sparse_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            SparseVectorPayload(np.zeros(3, dtype=np.int32), np.zeros(4))

    def test_workset_requires_labels(self):
        with pytest.raises(ValueError, match="labels"):
            WorksetPayload(block_id=0, block=make_csr(with_labels=False))

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_payload(b"\x00" * 10)

    def test_bad_magic_rejected(self):
        encoded = bytearray(encode_payload(DenseVectorPayload(np.zeros(2))))
        encoded[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode_payload(bytes(encoded))

    def test_bad_version_rejected(self):
        encoded = bytearray(encode_payload(DenseVectorPayload(np.zeros(2))))
        encoded[4] = 9
        with pytest.raises(ValueError, match="version"):
            decode_payload(bytes(encoded))

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_payload(object())


class TestDegenerateShapes:
    """Length invariants on zero-nnz and zero-row payloads.

    The shard store writes one record per (block, worker) pair even when
    a worker owns no non-zeros of a block, so the byte model must hold
    exactly at nnz == 0 and n_rows == 0 — otherwise footer offsets drift.
    """

    def test_zero_nnz_sparse_vector(self):
        payload = SparseVectorPayload(
            np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.float64)
        )
        encoded = encode_payload(payload)
        assert len(encoded) == payload.encoded_bytes() == sparse_vector_bytes(0)
        out = decode_payload(encoded)
        assert out.indices.size == 0 and out.values.size == 0

    def test_zero_nnz_csr_block_keeps_rows(self):
        # 4 rows, none of which store a value: indptr is all zeros
        payload = CSRBlockPayload(
            indptr=np.zeros(5, dtype=np.int32),
            indices=np.zeros(0, dtype=np.int32),
            data=np.zeros(0, dtype=np.float64),
        )
        encoded = encode_payload(payload)
        assert len(encoded) == payload.encoded_bytes()
        assert len(encoded) == csr_matrix_bytes(4, 0, with_labels=False)
        out = decode_payload(encoded)
        assert out.n_rows == 4
        assert out.indices.size == 0

    def test_empty_csr_block(self):
        payload = CSRBlockPayload(
            indptr=np.zeros(1, dtype=np.int32),
            indices=np.zeros(0, dtype=np.int32),
            data=np.zeros(0, dtype=np.float64),
        )
        encoded = encode_payload(payload)
        assert len(encoded) == payload.encoded_bytes()
        assert len(encoded) == csr_matrix_bytes(0, 0, with_labels=False)
        assert decode_payload(encoded).n_rows == 0

    def test_zero_nnz_csr_with_labels(self):
        payload = CSRBlockPayload(
            indptr=np.zeros(3, dtype=np.int32),
            indices=np.zeros(0, dtype=np.int32),
            data=np.zeros(0, dtype=np.float64),
            labels=np.array([1.0, -1.0]),
        )
        encoded = encode_payload(payload)
        assert len(encoded) == payload.encoded_bytes()
        assert len(encoded) == csr_matrix_bytes(2, 0, with_labels=True)
        out = decode_payload(encoded)
        np.testing.assert_array_equal(out.labels, [1.0, -1.0])

    def test_decode_from_memoryview(self):
        # the mmap reader hands decode_payload memoryview slices; the
        # codec must accept them without an intermediate bytes copy
        payload = make_csr(n_rows=3, nnz=5, seed=41)
        encoded = encode_payload(payload)
        out = decode_payload(memoryview(encoded))
        np.testing.assert_array_equal(out.indptr, payload.indptr.astype(np.int64))
        np.testing.assert_array_equal(out.data, payload.data)
