"""Tests for cluster presets and the consolidated report builder."""

import pytest

from repro.experiments import build_report, collect_results, write_report
from repro.experiments.paper_report import ARTIFACT_ORDER
from repro.sim import CROSS_AZ, EDGE, MODERN_RACK, PRESETS, SimulatedCluster, load_preset


class TestPresets:
    def test_all_presets_valid_specs(self):
        for name, spec in PRESETS.items():
            cluster = SimulatedCluster(spec)
            assert cluster.n_workers == spec.n_workers
            assert cluster.network.bandwidth > 0

    def test_lookup(self):
        assert load_preset("Modern-Rack") is MODERN_RACK
        assert load_preset("cross-az") is CROSS_AZ
        with pytest.raises(KeyError):
            load_preset("gpu-pod")

    def test_presets_span_the_design_space(self):
        assert MODERN_RACK.bandwidth_bytes_per_s > 50 * EDGE.bandwidth_bytes_per_s
        assert CROSS_AZ.latency_s > 5 * MODERN_RACK.latency_s

    def test_training_runs_on_every_preset(self, tiny_binary):
        from repro.core import train_columnsgd
        from repro.models import LogisticRegression
        from repro.optim import SGD

        for name in ("modern-rack", "cross-az", "edge"):
            cluster = SimulatedCluster(load_preset(name))
            result = train_columnsgd(
                tiny_binary, LogisticRegression(), SGD(0.5), cluster,
                batch_size=32, iterations=3, eval_every=0, block_size=64,
            )
            assert result.n_iterations == 3


class TestReport:
    def seed_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig7_data_loading.txt").write_text("=== fig7 ===\nstuff\n")
        (results / "table1_paper_scale.txt").write_text("=== t1 ===\nstuff\n")
        (results / "ablation_custom.txt").write_text("=== custom ===\nstuff\n")
        return results

    def test_collect_orders_paper_artifacts_first(self, tmp_path):
        results = self.seed_results(tmp_path)
        names = [p.stem for p in collect_results(results)]
        assert names == ["table1_paper_scale", "fig7_data_loading", "ablation_custom"]

    def test_build_report_includes_everything(self, tmp_path):
        results = self.seed_results(tmp_path)
        text = build_report(results)
        for token in ("reproduction report", "=== t1 ===", "=== custom ==="):
            assert token in text

    def test_empty_results_dir(self, tmp_path):
        assert "no results found" in build_report(tmp_path / "nope")

    def test_write_report(self, tmp_path):
        results = self.seed_results(tmp_path)
        out = tmp_path / "REPORT.txt"
        text = write_report(results, output=out)
        assert out.read_text() == text

    def test_artifact_order_has_no_duplicates(self):
        assert len(ARTIFACT_ORDER) == len(set(ARTIFACT_ORDER))

    def test_real_results_report_when_present(self):
        import pathlib

        results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.is_dir():
            pytest.skip("benchmarks not yet run")
        text = build_report(results)
        assert "table1" in text
