"""Fault-tolerance semantics of the RowSGD baselines (vs ColumnSGD's)."""

import numpy as np
import pytest

from repro.baselines import MLlibTrainer, RowSGDConfig
from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import MasterFailedError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import (
    CLUSTER1,
    FailureEvent,
    FailureInjector,
    FailureKind,
    SimulatedCluster,
)


def fit_mllib(data, failures=None, iterations=20):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    trainer = MLlibTrainer(
        LogisticRegression(), SGD(1.0), cluster,
        config=RowSGDConfig(batch_size=100, iterations=iterations, eval_every=5,
                            seed=12),
        failures=failures,
    )
    trainer.load(data)
    return trainer.fit()


class TestRowSGDFailures:
    def test_worker_failure_has_no_numeric_effect(self, small_binary):
        """The model lives at the master: a worker crash only costs a
        shard reload — the trajectory is bit-identical."""
        clean = fit_mllib(small_binary)
        failed = fit_mllib(small_binary, FailureInjector.worker_failure(8, 2))
        assert np.array_equal(clean.final_params, failed.final_params)
        assert failed.total_sim_time > clean.total_sim_time

    def test_task_failure_costs_one_launch(self, small_binary):
        from repro.sim.cost import SPARK_TASK_OVERHEAD

        clean = fit_mllib(small_binary)
        failed = fit_mllib(small_binary, FailureInjector.task_failure(8, 2))
        extra = failed.total_sim_time - clean.total_sim_time
        assert extra == pytest.approx(SPARK_TASK_OVERHEAD, abs=1e-9)

    def test_master_failure_loses_the_model(self, small_binary):
        injector = FailureInjector([FailureEvent(5, FailureKind.MASTER)])
        with pytest.raises(MasterFailedError, match="model is lost"):
            fit_mllib(small_binary, injector)

    def test_ft_asymmetry_vs_columnsgd(self, small_binary):
        """The structural difference: a worker crash perturbs ColumnSGD's
        trajectory (its model partition dies with the worker) but not
        MLlib's (centralised model)."""
        mllib_clean = fit_mllib(small_binary)
        mllib_failed = fit_mllib(small_binary, FailureInjector.worker_failure(8, 2))
        assert np.array_equal(mllib_clean.final_params, mllib_failed.final_params)

        def fit_column(failures=None):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            driver = ColumnSGDDriver(
                LogisticRegression(), SGD(1.0), cluster,
                config=ColumnSGDConfig(batch_size=100, iterations=20,
                                       eval_every=5, seed=12, block_size=256),
                failures=failures,
            )
            driver.load(small_binary)
            return driver.fit()

        column_clean = fit_column()
        column_failed = fit_column(FailureInjector.worker_failure(8, 2))
        assert not np.array_equal(
            column_clean.final_params, column_failed.final_params
        )
