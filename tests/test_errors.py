"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConvergenceError,
    DataError,
    DimensionMismatchError,
    LibsvmFormatError,
    MasterFailedError,
    OutOfMemoryError,
    PartitionError,
    ReproError,
    SimulationError,
    StatisticsRecoveryError,
    TrainingError,
    WorkerFailedError,
)


class TestHierarchy:
    def test_single_base_class(self):
        for exc in (
            DataError, PartitionError, SimulationError, TrainingError,
            DimensionMismatchError, LibsvmFormatError, WorkerFailedError,
            MasterFailedError, OutOfMemoryError, StatisticsRecoveryError,
            ConvergenceError,
        ):
            assert issubclass(exc, ReproError)

    def test_subhierarchies(self):
        assert issubclass(LibsvmFormatError, DataError)
        assert issubclass(WorkerFailedError, SimulationError)
        assert issubclass(OutOfMemoryError, SimulationError)
        assert issubclass(ConvergenceError, TrainingError)


class TestMessages:
    def test_libsvm_error_carries_context(self):
        err = LibsvmFormatError(7, "bad line content", "no colon")
        assert err.line_number == 7
        assert "line 7" in str(err)
        assert "no colon" in str(err)

    def test_libsvm_error_truncates_long_lines(self):
        err = LibsvmFormatError(1, "x" * 500, "too long")
        assert len(str(err)) < 200

    def test_dimension_mismatch(self):
        err = DimensionMismatchError((3,), (4,), "model shape")
        assert "model shape" in str(err)
        assert err.expected == (3,)

    def test_oom_reports_gb(self):
        err = OutOfMemoryError("worker 3", int(40e9), int(32e9))
        assert "40.00 GB" in str(err)
        assert "32.00 GB" in str(err)

    def test_worker_failed(self):
        assert WorkerFailedError(5).worker_id == 5

    def test_statistics_recovery_lists_groups(self):
        err = StatisticsRecoveryError([1, 3])
        assert err.missing_groups == (1, 3)
        assert "[1, 3]" in str(err)

    def test_convergence_error(self):
        err = ConvergenceError(42, float("nan"))
        assert err.iteration == 42
        assert "learning rate" in str(err)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise WorkerFailedError(0)
