"""Property-based tests on the distributed protocol itself.

Hypothesis draws cluster widths, batch sizes, block sizes and schemes;
the exactness invariant (distributed trajectory == sequential) and the
statistics-recovery invariant must hold for all of them.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BackupGroups, ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster

DATA = make_classification(200, 64, nnz_per_row=6, binary_features=False, seed=42)


def distributed_params(workers, batch, block, scheme, iterations=5, backup=0):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    config = ColumnSGDConfig(
        batch_size=batch, iterations=iterations, eval_every=0, seed=11,
        block_size=block, scheme=scheme, backup=backup,
    )
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.5), cluster, config)
    driver.load(DATA)
    result = driver.fit()
    return driver, result.final_params


class TestExactnessProperty:
    @given(
        workers=st.integers(1, 8),
        batch=st.integers(1, 64),
        block=st.sampled_from([16, 32, 64, 128]),
        scheme=st.sampled_from(["round_robin", "range", "hash"]),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_distributed_equals_sequential(self, workers, batch, block, scheme):
        driver, params = distributed_params(workers, batch, block, scheme)
        reference = LogisticRegression().init_params(DATA.n_features)
        opt = SGD(0.5)
        index = driver._index
        for t in range(5):
            rows = index.to_global_rows(index.sample(t, batch))
            sub = DATA.take(rows)
            grad = LogisticRegression().gradient(sub.features, sub.labels, reference)
            opt.step(reference, grad, t)
        assert np.allclose(params, reference, atol=1e-9)

    @given(
        workers=st.sampled_from([2, 4, 6, 8]),
        backup=st.sampled_from([1]),
        batch=st.integers(4, 48),
    )
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backup_preserves_trajectory(self, workers, backup, batch):
        _, pure = distributed_params(workers, batch, 32, "round_robin")
        _, backed = distributed_params(workers, batch, 32, "round_robin",
                                       backup=backup)
        assert np.allclose(pure, backed, atol=1e-9)


class TestBackupGroupProperties:
    @given(
        st.integers(1, 24).filter(lambda k: k > 0),
        st.integers(0, 5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_survivor_selection_covers_all_partitions(self, n_workers, backup, data):
        if n_workers % (backup + 1) != 0:
            return
        groups = BackupGroups(n_workers, backup)
        dead = data.draw(
            st.sets(st.integers(0, n_workers - 1), max_size=n_workers)
        )
        # keep at least one survivor per group, else skip
        if any(set(g) <= dead for g in groups.groups()):
            return
        survivors = groups.select_survivors(frozenset(dead))
        covered = set()
        for w in survivors:
            covered |= set(groups.partitions_of_worker(w))
        assert covered == set(range(n_workers))
        # exactly one survivor per group
        assert len(survivors) == groups.n_groups

    @given(st.integers(1, 4), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_every_partition_replicated_s_plus_1_times(self, groups_count, backup):
        n_workers = groups_count * (backup + 1)
        groups = BackupGroups(n_workers, backup)
        for p in range(n_workers):
            replicas = groups.replicas_of_partition(p)
            assert len(replicas) == backup + 1
            assert all(p in groups.partitions_of_worker(w) for w in replicas)
