"""TimeoutSync / RetrySync: timeout suspicion, backoff, degradation."""

from types import SimpleNamespace

import pytest

from repro.core import BackupGroups, ColumnSGDConfig, ColumnSGDDriver
from repro.engine import (
    ComputePhase,
    EngineTrace,
    MasterPhase,
    RetrySync,
    RoundEngine,
    RoundSpec,
    TimeoutSync,
)
from repro.errors import ConfigurationError, StatisticsRecoveryError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster, StragglerModel

INF = float("inf")


def make_ctx():
    return SimpleNamespace(
        cluster=SimpleNamespace(engine_trace=EngineTrace(system="test")),
        t=0,
        failed=set(),
    )


class TestValidation:
    def test_rejects_alpha_below_one(self):
        with pytest.raises(ConfigurationError):
            TimeoutSync(BackupGroups(4, 0), alpha=0.5)

    def test_rejects_backoff_below_one(self):
        with pytest.raises(ConfigurationError):
            TimeoutSync(BackupGroups(4, 0), backoff=0.9)

    def test_rejects_unknown_on_exhausted(self):
        with pytest.raises(ConfigurationError):
            TimeoutSync(BackupGroups(4, 0), on_exhausted="panic")

    def test_retry_sync_defaults(self):
        policy = RetrySync(BackupGroups(4, 0))
        assert policy.max_retries == 2
        assert policy.on_exhausted == "stale"


class TestResolve:
    def test_all_arrived_degenerates_to_barrier(self):
        policy = TimeoutSync(BackupGroups(4, 0), alpha=3.0)
        ctx = make_ctx()
        duration = policy.resolve(ctx, {0: 1.0, 1: 1.2, 2: 0.9, 3: 1.1})
        assert duration == pytest.approx(1.2)
        assert ctx.chosen == {0, 1, 2, 3}
        assert ctx.cluster.engine_trace.retries == []

    def test_covered_group_proceeds_at_deadline(self):
        """A straggler past the deadline is suspected, but its backup
        peer covers the group — proceed without it, and don't kill it."""
        policy = TimeoutSync(BackupGroups(4, 1), alpha=1.5)
        ctx = make_ctx()
        # groups {0,1} and {2,3}; worker 3 is a 10x straggler
        duration = policy.resolve(ctx, {0: 1.0, 1: 1.0, 2: 1.0, 3: 10.0})
        assert duration == pytest.approx(1.5)  # alpha * median
        assert 3 not in ctx.chosen
        assert ctx.killed == set()
        (event,) = ctx.cluster.engine_trace.retries
        assert event.suspects == (3,)
        assert event.resolved == "arrived"

    def test_uncovered_group_raises_when_exhausted(self):
        policy = TimeoutSync(BackupGroups(4, 0), alpha=1.5, on_exhausted="raise")
        ctx = make_ctx()
        with pytest.raises(StatisticsRecoveryError):
            policy.resolve(ctx, {0: 1.0, 1: 1.0, 2: 1.0, 3: INF})
        (event,) = ctx.cluster.engine_trace.retries
        assert event.resolved == "failed"

    def test_uncovered_group_degrades_to_stale(self):
        policy = TimeoutSync(BackupGroups(4, 0), alpha=1.5, on_exhausted="stale")
        ctx = make_ctx()
        duration = policy.resolve(ctx, {0: 1.0, 1: 1.0, 2: 1.0, 3: INF})
        assert duration == pytest.approx(1.5)
        assert ctx.stale_groups == {3}
        assert ctx.chosen == {0, 1, 2}
        (event,) = ctx.cluster.engine_trace.retries
        assert event.resolved == "stale"

    def test_backoff_retries_until_straggler_arrives(self):
        """Deadline 1.5 -> 3.0 -> 6.0; the 5 s straggler arrives in the
        third window, so two 'retry' expiries precede success."""
        policy = TimeoutSync(
            BackupGroups(4, 0), alpha=1.5, max_retries=3, backoff=2.0
        )
        ctx = make_ctx()
        duration = policy.resolve(ctx, {0: 1.0, 1: 1.0, 2: 1.0, 3: 5.0})
        assert duration == pytest.approx(5.0)
        events = ctx.cluster.engine_trace.retries
        assert [e.resolved for e in events] == ["retry", "retry"]
        assert [e.attempt for e in events] == [0, 1]
        assert [e.deadline_s for e in events] == [pytest.approx(1.5), pytest.approx(3.0)]

    def test_dead_worker_exhausts_every_retry(self):
        policy = RetrySync(BackupGroups(4, 0), alpha=1.5)
        ctx = make_ctx()
        policy.resolve(ctx, {0: 1.0, 1: 1.0, 2: 1.0, 3: INF})
        events = ctx.cluster.engine_trace.retries
        assert [e.resolved for e in events] == ["retry", "retry", "stale"]


class _OffsetTrainer:
    """A warmup master phase pushes the synchronized compute phase to a
    nonzero round offset; the timeout deadline must not notice."""

    WARMUP_S = 4.0
    # groups {0,1} and {2,3}; worker 3 blows the 1.5 x median deadline
    # but its backup peer covers the group
    FINISH = {0: 1.0, 1: 1.0, 2: 1.0, 3: 10.0}

    def __init__(self, cluster, warmup: bool):
        self.cluster = cluster
        self.warmup = warmup

    def round_spec(self) -> RoundSpec:
        head = (
            (MasterPhase("warmup", run="_phase_warmup"),) if self.warmup else ()
        )
        return RoundSpec(
            system="stub",
            sync=TimeoutSync(BackupGroups(4, 1), alpha=1.5),
            phases=head
            + (ComputePhase("work", run="_phase_work", synchronized=True),),
        )

    def _phase_warmup(self, ctx) -> float:
        return self.WARMUP_S

    def _phase_work(self, ctx):
        return dict(self.FINISH)


class TestPhaseRelativeDeadline:
    """The TimeoutSync contract: finish times, deadline and the resolved
    duration are all offsets from the synchronized phase's *start*, not
    from the round's — the engine adds the phase's scheduled start when
    placing them on the round timeline."""

    def run_stub(self, warmup: bool):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        trainer = _OffsetTrainer(cluster, warmup=warmup)
        engine = RoundEngine(trainer, cluster)
        engine.run_round(0)
        return cluster.engine_trace

    def test_deadline_is_independent_of_phase_offset(self):
        at_zero = self.run_stub(warmup=False)
        at_offset = self.run_stub(warmup=True)
        (event_zero,) = at_zero.retries
        (event_offset,) = at_offset.retries
        # alpha x median(finish) = 1.5 x 1.0 in both runs: the warmup
        # offset never leaks into the policy's arithmetic
        assert event_zero.deadline_s == pytest.approx(1.5)
        assert event_offset.deadline_s == pytest.approx(1.5)
        assert event_zero.suspects == event_offset.suspects == (3,)

    def test_engine_maps_deadline_onto_the_round_timeline(self):
        trace = self.run_stub(warmup=True)
        events = {e.phase: e for e in trace.round_events(0)}
        (retry,) = trace.retries
        # the synchronized phase starts where warmup ends...
        assert events["work"].start == pytest.approx(_OffsetTrainer.WARMUP_S)
        # ...and ends deadline_s later: phase start + phase-relative
        # deadline, NOT the deadline read as a round offset
        assert events["work"].end == pytest.approx(
            _OffsetTrainer.WARMUP_S + retry.deadline_s
        )


class TestDriverIntegration:
    def make_driver(self, data, sync_policy, straggler=None, **overrides):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(
            batch_size=64, iterations=10, eval_every=5, seed=9, block_size=64,
            sync_policy=sync_policy, **overrides,
        )
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(1.0), cluster, config=config,
            straggler=straggler,
        )
        driver.load(data)
        return driver

    def test_timeout_suspects_permanent_straggler(self, tiny_binary):
        driver = self.make_driver(
            tiny_binary, "timeout", sync_alpha=1.2,
            straggler=StragglerModel(4, level=9.0, mode="permanent", seed=3),
        )
        result = driver.fit()
        trace = driver.cluster.engine_trace
        assert trace.retries  # the straggler blew the deadline
        assert driver.last_killed == set()  # suspicion never kills
        assert result.final_loss() < result.losses()[0][2]

    def test_stale_survives_mid_run_kill(self, tiny_binary):
        """kill_worker() mid-run (footnote 6) leaves an uncovered group;
        with 'stale' the master substitutes the cached contribution
        instead of raising."""
        driver = self.make_driver(tiny_binary, "retry")
        for t in range(3):
            driver.run_round(t)
        driver.kill_worker(1)
        for t in range(3, 6):
            driver.run_round(t)
        trace = driver.cluster.engine_trace
        assert any(e.resolved == "stale" for e in trace.retries)

    def test_raise_mode_escalates_mid_run_kill(self, tiny_binary):
        driver = self.make_driver(
            tiny_binary, "timeout", sync_on_exhausted="raise"
        )
        for t in range(3):
            driver.run_round(t)
        driver.kill_worker(1)
        with pytest.raises(StatisticsRecoveryError):
            driver.run_round(3)

    def test_stale_round_checks_protocol(self, tiny_binary):
        """Stale rounds skip a group's statistics push; the per-round
        byte audit must still pass (suspected workers did send — their
        messages just arrived late)."""
        driver = self.make_driver(
            tiny_binary, "retry", check_protocol=True,
            straggler=StragglerModel(4, level=9.0, mode="permanent", seed=3),
            sync_alpha=1.2,
        )
        driver.fit()  # ProtocolViolation would raise here
