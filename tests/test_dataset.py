"""Unit tests for repro.datasets.Dataset and the synthetic generators."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    make_classification,
    make_multiclass,
)
from repro.errors import DataError
from repro.linalg import CSRMatrix


class TestDataset:
    def test_rejects_label_mismatch(self):
        with pytest.raises(DataError):
            Dataset(CSRMatrix.empty(3, 4), np.zeros(2))

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError):
            Dataset(CSRMatrix.empty(2, 4), np.zeros((2, 1)))

    def test_basic_accessors(self, tiny_binary):
        assert tiny_binary.n_rows == 300
        assert tiny_binary.n_features == 120
        assert len(tiny_binary) == 300
        assert 0.0 < tiny_binary.sparsity() < 1.0

    def test_take_and_slice(self, tiny_binary):
        sub = tiny_binary.take([5, 5, 0])
        assert sub.n_rows == 3
        assert sub.labels[0] == sub.labels[1] == tiny_binary.labels[5]
        assert tiny_binary.slice(10, 20).n_rows == 10

    def test_shuffled_preserves_pairs(self, tiny_binary):
        shuffled = tiny_binary.shuffled(seed=3)
        assert shuffled.n_rows == tiny_binary.n_rows
        # row multiset is preserved: match each shuffled row back
        orig = {tuple(tiny_binary.features.row(i).indices.tolist()): tiny_binary.labels[i]
                for i in range(tiny_binary.n_rows)}
        for i in range(0, shuffled.n_rows, 37):
            key = tuple(shuffled.features.row(i).indices.tolist())
            assert key in orig

    def test_stats_shape(self, tiny_binary):
        stats = tiny_binary.stats()
        assert stats.n_instances == 300
        assert stats.nnz == tiny_binary.nnz
        assert 0 < stats.sparsity < 1
        assert len(stats.as_row()) == 6

    def test_classes(self, tiny_binary, tiny_multiclass):
        assert set(tiny_binary.classes()) == {-1.0, 1.0}
        assert set(tiny_multiclass.classes()) <= {0.0, 1.0, 2.0, 3.0}

    def test_repr(self, tiny_binary):
        assert "rows=300" in repr(tiny_binary)


class TestGenerators:
    def test_classification_deterministic(self):
        a = make_classification(100, 50, seed=9)
        b = make_classification(100, 50, seed=9)
        assert a.features == b.features
        assert np.array_equal(a.labels, b.labels)

    def test_classification_labels_are_pm1(self, tiny_binary):
        assert set(np.unique(tiny_binary.labels)) == {-1.0, 1.0}

    def test_classification_binary_features(self):
        data = make_classification(50, 40, binary_features=True, seed=1)
        assert np.all(data.features.data == 1.0)

    def test_classification_gaussian_features(self):
        data = make_classification(50, 40, binary_features=False, seed=1)
        assert not np.all(data.features.data == 1.0)

    def test_nnz_per_row_respected(self):
        data = make_classification(200, 1000, nnz_per_row=15, seed=2)
        mean_nnz = data.nnz / data.n_rows
        assert 10 < mean_nnz < 20

    def test_zipf_skews_popularity(self):
        data = make_classification(500, 200, nnz_per_row=10, zipf_exponent=1.3, seed=4)
        counts = np.bincount(data.features.indices, minlength=200)
        # a hot head: top feature much more popular than median
        assert counts.max() > 5 * max(np.median(counts), 1)

    def test_label_noise_zero_is_separable(self):
        data = make_classification(300, 50, label_noise=0.0, seed=6)
        assert set(np.unique(data.labels)) <= {-1.0, 1.0}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_classification(0, 10)
        with pytest.raises(ValueError):
            make_classification(10, 10, label_noise=1.5)

    def test_regression_labels_real(self, tiny_regression):
        assert tiny_regression.labels.dtype == np.float64
        assert np.std(tiny_regression.labels) > 0

    def test_multiclass_range(self, tiny_multiclass):
        labels = tiny_multiclass.labels
        assert labels.min() >= 0 and labels.max() < 4

    def test_multiclass_rejects_single_class(self):
        with pytest.raises(ValueError):
            make_multiclass(10, 10, n_classes=1)

    def test_rows_have_at_least_one_feature(self, tiny_binary):
        assert tiny_binary.features.row_nnz().min() >= 1
