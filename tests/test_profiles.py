"""Unit tests for the Table II dataset profiles."""

import pytest

from repro.datasets import PROFILES, load_profile


class TestProfiles:
    def test_all_five_datasets_present(self):
        assert set(PROFILES) == {"avazu", "kddb", "kdd12", "criteo", "wx"}

    def test_paper_scale_matches_table2(self):
        avazu = load_profile("avazu")
        assert avazu.paper_instances == 40_428_967
        assert avazu.paper_features == 1_000_000
        kdd12 = load_profile("kdd12")
        assert kdd12.paper_instances == 149_639_105
        assert kdd12.paper_features == 54_686_452

    def test_lookup_case_insensitive(self):
        assert load_profile("KDDB").name == "kddb"

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown"):
            load_profile("mnist")

    def test_paper_sparsity_high_for_ctr(self):
        for name in ("avazu", "kddb", "kdd12", "wx"):
            assert load_profile(name).paper_sparsity > 0.99

    def test_criteo_is_dense(self):
        assert load_profile("criteo").paper_sparsity == pytest.approx(0.0)

    def test_learning_rates_table3(self):
        assert load_profile("avazu").learning_rate("lr") == 10.0
        assert load_profile("kdd12").learning_rate("lr") == 100.0
        assert load_profile("kdd12").learning_rate("svm") == 1.0
        assert load_profile("wx").learning_rate("fm") == 0.1

    def test_learning_rate_unknown_model(self):
        with pytest.raises(KeyError):
            load_profile("avazu").learning_rate("resnet")

    def test_generate_respects_profile(self):
        data = load_profile("avazu").generate(seed=1, rows=500)
        assert data.n_rows == 500
        assert data.n_features == 10_000
        assert data.name == "avazu"

    def test_generate_deterministic(self):
        a = load_profile("kddb").generate(seed=2, rows=100, features=1000)
        b = load_profile("kddb").generate(seed=2, rows=100, features=1000)
        assert a.features == b.features

    def test_generated_sparsity_tracks_profile(self):
        profile = load_profile("kdd12")
        data = profile.generate(seed=0, rows=1000)
        mean_nnz = data.nnz / data.n_rows
        assert abs(mean_nnz - profile.scaled_nnz_per_row) < 3
