"""Unit tests for optimizers and schedules."""

import numpy as np
import pytest

from repro.optim import (
    SGD,
    AdaGrad,
    Adam,
    ConstantSchedule,
    InverseScalingSchedule,
    StepDecaySchedule,
    make_optimizer,
    OPTIMIZER_REGISTRY,
)


def quadratic_descends(optimizer, steps=200):
    """Minimise ||w||^2 / 2; gradient is w itself."""
    w = np.array([5.0, -3.0, 2.0])
    start = float(np.dot(w, w))
    for t in range(steps):
        optimizer.step(w, w.copy(), t)
    return float(np.dot(w, w)) < start * 0.01


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule().factor(0) == 1.0
        assert ConstantSchedule().factor(1000) == 1.0

    def test_inverse_scaling_decays(self):
        sched = InverseScalingSchedule(decay=0.1, power=1.0)
        assert sched.factor(0) == 1.0
        assert sched.factor(10) == pytest.approx(0.5)

    def test_step_decay(self):
        sched = StepDecaySchedule(step_size=10, gamma=0.5)
        assert sched.factor(9) == 1.0
        assert sched.factor(10) == 0.5
        assert sched.factor(25) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(step_size=0)
        with pytest.raises(ValueError):
            InverseScalingSchedule(decay=-1)


class TestSGD:
    def test_plain_update(self):
        opt = SGD(0.1)
        w = np.array([1.0, 2.0])
        opt.step(w, np.array([1.0, -1.0]), 0)
        assert np.allclose(w, [0.9, 2.1])

    def test_updates_in_place(self):
        opt = SGD(0.1)
        w = np.zeros(2)
        out = opt.step(w, np.ones(2), 0)
        assert out is w

    def test_schedule_applied(self):
        opt = SGD(1.0, schedule=StepDecaySchedule(step_size=1, gamma=0.5))
        w = np.zeros(1)
        opt.step(w, np.ones(1), 2)  # factor 0.25
        assert w[0] == pytest.approx(-0.25)

    def test_momentum_accumulates(self):
        opt = SGD(0.1, momentum=0.9)
        w = np.zeros(1)
        opt.step(w, np.ones(1), 0)
        first = w[0]
        opt.step(w, np.ones(1), 1)
        assert (w[0] - first) < first  # second step moved further down

    def test_converges_on_quadratic(self):
        assert quadratic_descends(SGD(0.1))
        assert quadratic_descends(SGD(0.05, momentum=0.9))

    def test_spawn_is_fresh(self):
        opt = SGD(0.1, momentum=0.9)
        opt.step(np.zeros(1), np.ones(1), 0)
        clone = opt.spawn()
        assert clone._velocity is None
        assert clone.momentum == 0.9

    def test_shape_check(self):
        with pytest.raises(ValueError):
            SGD(0.1).step(np.zeros(2), np.zeros(3), 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.5)


class TestAdaGrad:
    def test_converges_on_quadratic(self):
        assert quadratic_descends(AdaGrad(1.0))

    def test_per_coordinate_adaptivity(self):
        opt = AdaGrad(1.0)
        w = np.zeros(2)
        opt.step(w, np.array([10.0, 0.1]), 0)
        # both coordinates move ~learning_rate on the first step
        assert abs(w[0]) == pytest.approx(abs(w[1]), rel=1e-4)

    def test_reset(self):
        opt = AdaGrad(1.0)
        opt.step(np.zeros(1), np.ones(1), 0)
        opt.reset()
        assert opt._accumulator is None


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descends(Adam(0.3))

    def test_first_step_size_is_learning_rate(self):
        opt = Adam(0.1)
        w = np.zeros(1)
        opt.step(w, np.array([42.0]), 0)
        assert abs(w[0]) == pytest.approx(0.1, rel=1e-4)

    def test_spawn_preserves_hypers(self):
        opt = Adam(0.1, beta1=0.8, beta2=0.99)
        clone = opt.spawn()
        assert clone.beta1 == 0.8
        assert clone.beta2 == 0.99
        assert clone._t == 0

    def test_reset(self):
        opt = Adam(0.1)
        opt.step(np.zeros(1), np.ones(1), 0)
        opt.reset()
        assert opt._t == 0 and opt._m is None


class TestPartitionedEquivalence:
    """Coordinate-wise optimizers updated per partition match the full
    update — the property that lets each worker run its own instance."""

    @pytest.mark.parametrize("factory", [
        lambda: SGD(0.1),
        lambda: SGD(0.1, momentum=0.9),
        lambda: AdaGrad(0.5),
        lambda: Adam(0.2),
    ])
    def test_partitioned_matches_full(self, factory, rng):
        full_opt = factory()
        part_opts = [factory(), factory()]
        w_full = rng.normal(size=10)
        w_parts = [w_full[0::2].copy(), w_full[1::2].copy()]
        for t in range(20):
            g = rng.normal(size=10)
            full_opt.step(w_full, g, t)
            part_opts[0].step(w_parts[0], g[0::2], t)
            part_opts[1].step(w_parts[1], g[1::2], t)
        assert np.allclose(w_full[0::2], w_parts[0], atol=1e-12)
        assert np.allclose(w_full[1::2], w_parts[1], atol=1e-12)


class TestRegistry:
    def test_all_constructible(self):
        for name in OPTIMIZER_REGISTRY:
            assert make_optimizer(name, 0.1).learning_rate == 0.1

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_optimizer("lbfgs", 0.1)
