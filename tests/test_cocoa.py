"""Tests for the CoCoA (distributed SDCA) extension."""

import numpy as np
import pytest

from repro.datasets import make_regression
from repro.errors import TrainingError
from repro.extensions.cocoa import CoCoATrainer
from repro.linalg.ops import row_dots
from repro.sim import CLUSTER1, SimulatedCluster


def ridge_optimum_loss(data, lam):
    dense = data.features.to_dense()
    n = data.n_rows
    gram = dense.T @ dense / n + lam * np.eye(data.n_features)
    w = np.linalg.solve(gram, dense.T @ data.labels / n)
    residual = dense @ w - data.labels
    return float(0.5 * np.mean(residual ** 2) + 0.5 * lam * np.dot(w, w))


def make_trainer(data, lam=0.1, iterations=60, workers=4, **kwargs):
    cluster = SimulatedCluster(CLUSTER1.with_workers(workers))
    trainer = CoCoATrainer(
        cluster, lam=lam, iterations=iterations, eval_every=10, seed=6,
        local_steps=120, **kwargs,
    )
    trainer.load(data)
    return trainer


class TestCoCoA:
    @pytest.fixture
    def data(self):
        return make_regression(400, 50, nnz_per_row=8, noise_std=0.05, seed=33)

    def test_primal_dual_identity_maintained(self, data):
        trainer = make_trainer(data, iterations=1)
        for t in range(8):
            trainer.run_round(t)
            assert trainer.primal_dual_consistency() < 1e-9

    def test_converges_near_closed_form(self, data):
        lam = 0.1
        trainer = make_trainer(data, lam=lam, iterations=150)
        result = trainer.fit()
        optimum = ridge_optimum_loss(data, lam)
        assert result.final_loss() < optimum * 1.15 + 1e-9

    def test_loss_decreases_monotonically(self, data):
        trainer = make_trainer(data, iterations=80)
        result = trainer.fit()
        losses = [l for _, _, l in result.losses()]
        assert losses[-1] < 0.5 * losses[0]
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_naive_sigma_unstable_on_overlapping_data(self, data):
        """sigma' = 1 adding overshoots when row shards share features
        heavily — the reason CoCoA+ inflates the local subproblem by K.
        The safe run converges; the naive run blows up (diverges
        outright or ends far above the safe loss)."""
        safe = make_trainer(data, iterations=20)
        safe_loss = safe.fit().final_loss()
        naive = make_trainer(data, iterations=20, aggregation="naive",
                             lam=0.001)
        try:
            naive_loss = naive.fit().final_loss()
        except TrainingError:
            return  # diverged to non-finite loss: exactly the point
        assert naive_loss > 10 * safe_loss

    def test_communication_scales_with_model_size(self):
        per_m = {}
        for m in (50, 500):
            data = make_regression(300, m, nnz_per_row=8, seed=34)
            trainer = make_trainer(data, iterations=2)
            result = trainer.fit()
            per_m[m] = result.records[-1].bytes_sent
        # O(m) sync — the structural opposite of ColumnSGD
        assert per_m[500] > 5 * per_m[50]

    def test_fit_without_load(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(TrainingError):
            CoCoATrainer(cluster).fit()

    def test_validation(self):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        with pytest.raises(ValueError):
            CoCoATrainer(cluster, lam=0.0)
        with pytest.raises(ValueError):
            CoCoATrainer(cluster, aggregation="average")

    def test_system_names(self, data):
        assert make_trainer(data, iterations=2).fit().system == "CoCoA+"
