"""Unit and shape tests for the row-to-column dispatchers (Section IV)."""

import numpy as np
import pytest

from repro.partition import (
    TwoPhaseIndex,
    dispatch_block_based,
    dispatch_naive,
    load_row_partitioned,
    make_assignment,
)


@pytest.fixture
def setup(tiny_binary, cluster4):
    asg = make_assignment("round_robin", tiny_binary.n_features, 4)
    return tiny_binary, asg, cluster4


class TestBlockDispatch:
    def test_stores_cover_all_columns(self, setup):
        data, asg, cluster = setup
        stores, _, _ = dispatch_block_based(data, asg, cluster, block_size=64)
        total_nnz = sum(s.nnz for s in stores)
        assert total_nnz == data.nnz

    def test_every_store_has_every_block(self, setup):
        data, asg, cluster = setup
        stores, block_sizes, _ = dispatch_block_based(data, asg, cluster, block_size=64)
        expected_blocks = sorted(block_sizes)
        for store in stores:
            assert store.block_ids() == expected_blocks
            assert store.n_rows == data.n_rows

    def test_logical_roundtrip(self, setup):
        """Sampling the same draws on all stores reassembles original rows."""
        data, asg, cluster = setup
        stores, block_sizes, _ = dispatch_block_based(data, asg, cluster, block_size=64)
        index = TwoPhaseIndex(block_sizes, base_seed=5)
        draws = index.sample(0, 32)
        reference = data.take(index.to_global_rows(draws))
        dense = np.zeros((32, data.n_features))
        for k, store in enumerate(stores):
            features, labels = store.assemble_batch(draws)
            assert np.array_equal(labels, reference.labels)
            dense[:, asg.columns_of(k)] = features.to_dense()
        assert np.array_equal(dense, reference.features.to_dense())

    def test_report_accounting(self, setup):
        data, asg, cluster = setup
        _, _, report = dispatch_block_based(data, asg, cluster, block_size=64)
        assert report.strategy == "ColumnSGD"
        assert report.seconds > 0
        assert report.bytes_shuffled > 0
        n_blocks = -(-data.n_rows // 64)
        assert report.n_objects_shipped == n_blocks * 4
        assert "dispatch" in report.phase_seconds

    def test_advances_cluster_clock(self, setup):
        data, asg, cluster = setup
        before = cluster.clock.now()
        _, _, report = dispatch_block_based(data, asg, cluster, block_size=64)
        assert cluster.clock.now() == pytest.approx(before + report.seconds)

    def test_describe(self, setup):
        data, asg, cluster = setup
        _, _, report = dispatch_block_based(data, asg, cluster, block_size=64)
        assert "ColumnSGD" in report.describe()


class TestNaiveDispatch:
    def test_same_logical_result_as_block(self, setup):
        data, asg, cluster = setup
        block_stores, block_sizes, _ = dispatch_block_based(
            data, asg, cluster, block_size=64
        )
        naive_stores, naive_sizes, _ = dispatch_naive(data, asg, cluster, block_size=64)
        assert block_sizes == naive_sizes
        for bs, ns in zip(block_stores, naive_stores):
            for bid in bs.block_ids():
                assert bs.get(bid).features == ns.get(bid).features

    def test_ships_one_object_per_row_and_dest(self, setup):
        data, asg, cluster = setup
        _, _, report = dispatch_naive(data, asg, cluster, block_size=64)
        assert report.n_objects_shipped == data.n_rows * 4

    def test_naive_slower_than_block(self, setup):
        """The Fig 7 headline: block dispatch beats row-by-row dispatch."""
        data, asg, cluster = setup
        _, _, block_report = dispatch_block_based(data, asg, cluster, block_size=64)
        _, _, naive_report = dispatch_naive(data, asg, cluster, block_size=64)
        assert naive_report.seconds > block_report.seconds
        assert naive_report.bytes_shuffled > block_report.bytes_shuffled


class TestRowLoading:
    def test_mllib_no_shuffle(self, setup):
        data, _, cluster = setup
        partitioner, report = load_row_partitioned(data, cluster, repartition=False)
        assert report.strategy == "MLlib"
        assert report.bytes_shuffled == 0
        assert sum(partitioner.shard_sizes()) == data.n_rows

    def test_repartition_shuffles(self, setup):
        data, _, cluster = setup
        _, report = load_row_partitioned(data, cluster, repartition=True)
        assert report.strategy == "MLlib-Repartition"
        assert report.bytes_shuffled > 0

    def test_fig7_ordering(self, tiny_binary, cluster4):
        """Fig 7 shape: naive > repartition > mllib > block dispatch."""
        data = tiny_binary
        asg = make_assignment("round_robin", data.n_features, 4)
        _, _, block = dispatch_block_based(data, asg, cluster4, block_size=64)
        _, _, naive = dispatch_naive(data, asg, cluster4, block_size=64)
        _, mllib = load_row_partitioned(data, cluster4, repartition=False)
        _, repart = load_row_partitioned(data, cluster4, repartition=True)
        assert naive.seconds > repart.seconds > mllib.seconds
        # block dispatch beats MLlib on CPU+network work (net of the fixed
        # task overhead both pay once)
        overhead = cluster4.cost.task_overhead
        assert block.seconds - overhead < mllib.seconds - overhead
