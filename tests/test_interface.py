"""Tests for the Fig 12 programming interface (UserDefinedModel)."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver, UserDefinedModel
from repro.linalg import accumulate_rows, row_dots
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


def user_lr():
    """Fig 12's LR ported callback-by-callback."""

    def init_model(local_dim):
        return np.zeros(local_dim)

    def compute_stat(batch, params):  # partial dot products
        return row_dots(batch, params)

    def compute_gradient(batch, labels, stats, params):
        scores = stats[:, 0]
        coeff = -labels / (1.0 + np.exp(labels * scores))
        return accumulate_rows(batch, coeff) / max(len(labels), 1)

    def loss(stats, labels):
        margins = labels * stats[:, 0]
        return float(np.mean(np.log1p(np.exp(-margins))))

    return UserDefinedModel(
        init_model=init_model,
        compute_stat=compute_stat,
        compute_gradient=compute_gradient,
        loss=loss,
    )


class TestUserDefinedModel:
    def test_matches_builtin_lr(self, tiny_gaussian):
        """The callback LR trains identically to the built-in LR."""
        results = []
        for model in (user_lr(), LogisticRegression()):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            config = ColumnSGDConfig(batch_size=32, iterations=12, eval_every=0,
                                     seed=6, block_size=64)
            driver = ColumnSGDDriver(model, SGD(0.5), cluster, config=config)
            driver.load(tiny_gaussian)
            results.append(driver.fit().final_params)
        assert np.allclose(results[0], results[1], atol=1e-9)

    def test_loss_evaluation(self, tiny_binary):
        model = user_lr()
        w = model.init_params(tiny_binary.n_features)
        loss = model.loss(tiny_binary.features, tiny_binary.labels, w)
        assert loss == pytest.approx(np.log(2))

    def test_custom_reduce_stat(self):
        model = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: row_dots(batch, params),
            compute_gradient=lambda b, y, s, p: np.zeros_like(p),
            loss=lambda s, y: 0.0,
            reduce_stat=lambda a, b: np.maximum(a, b),
        )
        a, b = np.array([[1.0], [5.0]]), np.array([[3.0], [2.0]])
        assert model.reduce_statistics(a, b).tolist() == [[3.0], [5.0]]

    def test_default_reduce_is_sum(self):
        model = user_lr()
        a, b = np.array([[1.0]]), np.array([[2.0]])
        assert model.reduce_statistics(a, b).tolist() == [[3.0]]

    def test_stat_shape_validated(self, tiny_binary):
        model = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: np.zeros((batch.n_rows, 3)),
            compute_gradient=lambda b, y, s, p: np.zeros_like(p),
            loss=lambda s, y: 0.0,
            statistics_width=1,
        )
        with pytest.raises(ValueError, match="compute_stat"):
            model.compute_statistics(tiny_binary.features, np.zeros(120))

    def test_gradient_shape_validated(self, tiny_binary):
        model = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: row_dots(batch, params),
            compute_gradient=lambda b, y, s, p: np.zeros(3),
            loss=lambda s, y: 0.0,
        )
        stats = model.compute_statistics(tiny_binary.features, np.zeros(120))
        with pytest.raises(ValueError, match="compute_gradient"):
            model.gradient_from_statistics(
                tiny_binary.features, tiny_binary.labels, stats, np.zeros(120)
            )

    def test_width_validated(self):
        with pytest.raises(ValueError):
            UserDefinedModel(
                init_model=lambda d: np.zeros(d),
                compute_stat=lambda b, p: None,
                compute_gradient=lambda b, y, s, p: None,
                loss=lambda s, y: 0.0,
                statistics_width=0,
            )
