"""Runtime BSP protocol checking: ProtocolChecker + Message validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mllib import MLlibTrainer
from repro.baselines.mllib_star import MLlibStarTrainer
from repro.baselines.parameter_server import ParameterServerTrainer
from repro.baselines.sparse_ps import SparsePSTrainer
from repro.baselines.ssp import StaleSyncPSTrainer
from repro.baselines.base import RowSGDConfig
from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
from repro.errors import ProtocolViolationError
from repro.models.linear import LogisticRegression
from repro.net.message import Message, MessageKind
from repro.net.protocol import ProtocolChecker
from repro.optim.sgd import SGD


def make_driver(cluster, data, **config_kwargs):
    config = ColumnSGDConfig(
        batch_size=64, iterations=6, eval_every=3, check_protocol=True,
        **config_kwargs,
    )
    driver = ColumnSGDDriver(LogisticRegression(), SGD(0.1), cluster, config=config)
    driver.load(data)
    return driver


# ----------------------------------------------------------------------
# Message validation (guards the checker's byte accounting)
# ----------------------------------------------------------------------
class TestMessageValidation:
    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="self-send"):
            Message(MessageKind.CONTROL, 2, 2, 10)

    def test_master_self_send_rejected(self):
        with pytest.raises(ValueError, match="self-send"):
            Message(MessageKind.CONTROL, Message.MASTER, Message.MASTER, 10)

    def test_float_size_rejected(self):
        with pytest.raises(TypeError, match="integer byte count"):
            Message(MessageKind.CONTROL, 0, 1, 10.5)

    def test_bool_size_rejected(self):
        with pytest.raises(TypeError, match="integer byte count"):
            Message(MessageKind.CONTROL, 0, 1, True)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Message(MessageKind.CONTROL, 0, 1, -5)

    def test_numpy_integer_size_accepted(self):
        message = Message(MessageKind.CONTROL, 0, 1, np.int64(128))
        assert message.size_bytes == 128


# ----------------------------------------------------------------------
# checked end-to-end runs: driver + baselines under check_protocol=True
# ----------------------------------------------------------------------
class TestCheckedRuns:
    def test_driver_run_passes_checks(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary)
        result = driver.fit()
        assert len(result.records) > 0
        assert cluster4.network.bytes_of_kind(MessageKind.STATISTICS_PUSH) > 0

    def test_driver_with_backup_passes_checks(self, cluster4, tiny_binary):
        driver = make_driver(cluster4, tiny_binary, backup=1)
        result = driver.fit()
        assert len(result.records) > 0

    def test_driver_checked_trajectory_unchanged(self, cluster4, tiny_binary):
        checked = make_driver(cluster4, tiny_binary).fit()
        from repro.sim.cluster import CLUSTER1, SimulatedCluster

        plain_cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=64, iterations=6, eval_every=3)
        plain = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), plain_cluster, config=config
        )
        plain.load(tiny_binary)
        result = plain.fit()
        np.testing.assert_allclose(checked.final_params, result.final_params)

    @pytest.mark.parametrize(
        "trainer_cls",
        [ParameterServerTrainer, MLlibStarTrainer, MLlibTrainer, SparsePSTrainer],
    )
    def test_baseline_run_passes_checks(self, cluster4, tiny_binary, trainer_cls):
        config = RowSGDConfig(
            batch_size=64, iterations=6, eval_every=3, check_protocol=True
        )
        trainer = trainer_cls(LogisticRegression(), SGD(0.1), cluster4, config=config)
        trainer.load(tiny_binary)
        result = trainer.fit()
        assert len(result.records) > 0

    def test_ssp_checked_run_passes(self, cluster4, tiny_binary):
        """SSP's sparse pushes vary per round, so it declares bounded
        TrafficEnvelopes instead of exact counts — and stays checked."""
        config = RowSGDConfig(
            batch_size=64, iterations=6, eval_every=3, check_protocol=True
        )
        trainer = StaleSyncPSTrainer(
            LogisticRegression(), SGD(0.1), cluster4, config=config, staleness=2
        )
        trainer.load(tiny_binary)
        result = trainer.fit()
        assert len(result.records) > 0
        assert cluster4.network.bytes_of_kind(MessageKind.GRADIENT_PUSH) > 0

    def test_ssp_checked_trajectory_unchanged(self, cluster4, tiny_binary):
        config = RowSGDConfig(
            batch_size=64, iterations=6, eval_every=3, check_protocol=True
        )
        checked = StaleSyncPSTrainer(
            LogisticRegression(), SGD(0.1), cluster4, config=config, staleness=2
        )
        checked.load(tiny_binary)
        checked_result = checked.fit()

        from repro.sim.cluster import CLUSTER1, SimulatedCluster

        plain_cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        plain_config = RowSGDConfig(batch_size=64, iterations=6, eval_every=3)
        plain = StaleSyncPSTrainer(
            LogisticRegression(), SGD(0.1), plain_cluster,
            config=plain_config, staleness=2,
        )
        plain.load(tiny_binary)
        plain_result = plain.fit()
        np.testing.assert_allclose(
            checked_result.final_params, plain_result.final_params
        )


# ----------------------------------------------------------------------
# violations: the checker must actually catch broken protocols
# ----------------------------------------------------------------------
class TestViolations:
    def test_message_outside_round_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        cluster4.network.send(Message(MessageKind.CONTROL, 0, 1, 8))
        with pytest.raises(ProtocolViolationError, match="crossed the barrier"):
            checker.begin_round(0)

    def test_double_begin_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        with pytest.raises(ProtocolViolationError, match="still open"):
            checker.begin_round(1)

    def test_end_without_begin_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        with pytest.raises(ProtocolViolationError, match="without a matching"):
            checker.end_round(0)

    def test_unanswered_push_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(
            Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 100)
        )
        with pytest.raises(ProtocolViolationError, match="never answered"):
            checker.end_round(0)

    def test_paired_push_bcast_passes(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(
            Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 100)
        )
        cluster4.network.send(
            Message(MessageKind.STATISTICS_BCAST, Message.MASTER, 0, 100)
        )
        checker.end_round(0)
        assert checker.rounds_checked == 1

    def test_undeclared_kind_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(Message(MessageKind.MODEL_PULL, Message.MASTER, 0, 64))
        with pytest.raises(ProtocolViolationError, match="unexpected model_pull"):
            checker.end_round(0, expected={})

    def test_control_traffic_is_unchecked(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(Message(MessageKind.CONTROL, Message.MASTER, 0, 8))
        checker.end_round(0, expected={})

    def test_count_mismatch_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(Message(MessageKind.MODEL_PULL, Message.MASTER, 0, 64))
        with pytest.raises(ProtocolViolationError, match="predicts 2 message"):
            checker.end_round(0, expected={MessageKind.MODEL_PULL: (2, 128)})

    def test_byte_mismatch_flagged(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(0)
        cluster4.network.send(Message(MessageKind.MODEL_PULL, Message.MASTER, 0, 64))
        with pytest.raises(ProtocolViolationError, match="predicts 100 byte"):
            checker.end_round(0, expected={MessageKind.MODEL_PULL: (1, 100)})

    def test_rogue_emission_raises_in_driver(self, cluster4, tiny_binary):
        """End-to-end: the engine derives its expectation from the
        RoundSpec, so the only way to drift is a rogue emission from an
        executor body — which the checker must catch."""
        driver = make_driver(cluster4, tiny_binary)
        original = ColumnSGDDriver._phase_reduce

        def rogue_reduce(self, ctx):
            seconds = original(self, ctx)
            self.cluster.network.send(
                Message(MessageKind.STATISTICS_PUSH, 0, Message.MASTER, 1)
            )
            return seconds

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ColumnSGDDriver, "_phase_reduce", rogue_reduce)
            with pytest.raises(ProtocolViolationError, match="statistics_push"):
                driver.fit()

    def test_violation_error_carries_details(self, cluster4):
        checker = ProtocolChecker(cluster4)
        checker.begin_round(3)
        cluster4.network.send(
            Message(MessageKind.STATISTICS_PUSH, 1, Message.MASTER, 10)
        )
        with pytest.raises(ProtocolViolationError) as excinfo:
            checker.end_round(3)
        assert excinfo.value.iteration == 3
        assert excinfo.value.problems
        assert "iteration 3" in str(excinfo.value)
