"""Unit tests for Workset and WorksetStore."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.linalg import CSRMatrix
from repro.partition import Workset, WorksetStore


def make_workset(block_id, n_rows=4, n_cols=6, seed=0):
    rng = np.random.default_rng(seed + block_id)
    dense = rng.normal(size=(n_rows, n_cols))
    dense[rng.random(dense.shape) < 0.5] = 0.0
    return Workset(block_id, CSRMatrix.from_dense(dense), rng.choice([-1.0, 1.0], n_rows))


class TestWorkset:
    def test_label_length_checked(self):
        with pytest.raises(PartitionError):
            Workset(0, CSRMatrix.empty(3, 2), np.zeros(2))

    def test_serialized_bytes_positive(self):
        ws = make_workset(0)
        assert ws.serialized_bytes() > 0
        assert ws.n_rows == 4


class TestWorksetStore:
    @pytest.fixture
    def store(self):
        store = WorksetStore(worker_id=1, local_dim=6)
        for b in range(3):
            store.put(make_workset(b))
        return store

    def test_put_rejects_wrong_dim(self):
        store = WorksetStore(0, local_dim=4)
        with pytest.raises(PartitionError, match="columns"):
            store.put(make_workset(0, n_cols=6))

    def test_put_rejects_duplicates(self, store):
        with pytest.raises(PartitionError, match="duplicate"):
            store.put(make_workset(1))

    def test_get_missing(self, store):
        with pytest.raises(PartitionError, match="no workset"):
            store.get(99)

    def test_block_bookkeeping(self, store):
        assert store.block_ids() == [0, 1, 2]
        assert store.block_sizes() == {0: 4, 1: 4, 2: 4}
        assert store.n_rows == 12
        assert store.nnz > 0
        assert store.stored_bytes() > 0

    def test_assemble_batch_order(self, store):
        draws = [(2, 1), (0, 3), (2, 0), (0, 3)]
        features, labels = store.assemble_batch(draws)
        assert features.shape == (4, 6)
        expected = [
            store.get(2).labels[1],
            store.get(0).labels[3],
            store.get(2).labels[0],
            store.get(0).labels[3],
        ]
        assert labels.tolist() == expected
        assert np.array_equal(
            features.to_dense()[0], store.get(2).features.to_dense()[1]
        )

    def test_assemble_empty(self, store):
        features, labels = store.assemble_batch([])
        assert features.shape == (0, 6)
        assert labels.size == 0

    def test_assemble_bad_offset(self, store):
        with pytest.raises(PartitionError, match="offset"):
            store.assemble_batch([(0, 10)])

    def test_clear(self, store):
        store.clear()
        assert store.n_rows == 0
        assert store.block_ids() == []
