"""Golden-trajectory recorder (DESIGN invariant 1 regression harness).

Runs every trainer x model x optimizer combination the repository
supports on small deterministic datasets and serialises the *exact*
floating-point trajectory — per-evaluation losses plus the final
parameters, both as IEEE-754 hex strings — to
``tests/golden/trajectories.json``.

The fixture shipped in the repository was recorded on the pre-engine
round loops; ``tests/test_golden_trajectories.py`` replays every combo
on the current code and asserts bit-for-bit equality, which is what
licenses refactors of the round machinery: same draws, same arithmetic,
same bits.

Regenerate (only when *intentionally* changing the numerics)::

    PYTHONPATH=src python tests/golden/record_golden.py
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

import numpy as np

FIXTURE = pathlib.Path(__file__).parent / "trajectories.json"

ITERATIONS = 6
BATCH = 64
WORKERS = 4


def _hex_array(values: np.ndarray) -> List[str]:
    return [float(v).hex() for v in np.asarray(values, dtype=np.float64).ravel()]


def _hex_losses(result) -> List[List[str]]:
    return [[str(it), float(loss).hex()] for it, _, loss in result.losses()]


def _cluster():
    from repro.sim import CLUSTER1, SimulatedCluster

    return SimulatedCluster(CLUSTER1.with_workers(WORKERS))


def _data():
    from repro.datasets import make_classification

    # Gaussian feature values keep hinge margins off the kink at 1.0
    # (same reasoning as the tiny_gaussian test fixture).
    return make_classification(300, 120, nnz_per_row=8, binary_features=False, seed=17)


def _models():
    from repro.models import (
        FactorizationMachine,
        LeastSquares,
        LinearSVM,
        LogisticRegression,
    )

    return {
        "lr": lambda: LogisticRegression(),
        "svm": lambda: LinearSVM(),
        "lstsq": lambda: LeastSquares(),
        "fm4": lambda: FactorizationMachine(n_factors=4),
    }


def _optimizers():
    from repro.optim import SGD, AdaGrad, Adam

    return {
        "sgd": lambda: SGD(0.1),
        "adagrad": lambda: AdaGrad(0.1),
        "adam": lambda: Adam(0.01),
    }


def record_all() -> Dict[str, dict]:
    """Run every combo; returns {combo key: trajectory record}."""
    from repro.baselines import (
        MLlibStarTrainer,
        MLlibTrainer,
        ParameterServerTrainer,
        RowSGDConfig,
        SparsePSTrainer,
        StaleSyncPSTrainer,
    )
    from repro.core.driver import ColumnSGDConfig, ColumnSGDDriver
    from repro.extensions import (
        CoCoATrainer,
        ColumnMLP,
        DeepColumnMLP,
        DeepMLPColumnTrainer,
        MLPColumnTrainer,
        RidgeCDTrainer,
    )

    models = _models()
    optimizers = _optimizers()
    out: Dict[str, dict] = {}

    def entry(key: str, result, params: np.ndarray) -> None:
        out[key] = {
            "losses": _hex_losses(result),
            "final_params": _hex_array(params),
        }

    # --- ColumnSGD driver: every model x optimizer, plus one backup run
    for model_name, make_model in models.items():
        for opt_name, make_opt in optimizers.items():
            driver = ColumnSGDDriver(
                make_model(),
                make_opt(),
                _cluster(),
                config=ColumnSGDConfig(
                    batch_size=BATCH, iterations=ITERATIONS, eval_every=2, seed=3
                ),
            )
            driver.load(_data())
            result = driver.fit()
            entry(
                "columnsgd/{}/{}".format(model_name, opt_name),
                result,
                result.final_params,
            )
    backup_driver = ColumnSGDDriver(
        models["lr"](),
        optimizers["sgd"](),
        _cluster(),
        config=ColumnSGDConfig(
            batch_size=BATCH, iterations=ITERATIONS, eval_every=2, seed=3, backup=1
        ),
    )
    backup_driver.load(_data())
    entry("columnsgd-backup1/lr/sgd", backup_driver.fit(), backup_driver.current_params())

    # --- RowSGD baselines: lr x {sgd, adagrad}
    baselines = {
        "mllib": MLlibTrainer,
        "mllib_star": MLlibStarTrainer,
        "petuum": ParameterServerTrainer,
        "mxnet": SparsePSTrainer,
    }
    for system, trainer_cls in baselines.items():
        for opt_name in ("sgd", "adagrad"):
            trainer = trainer_cls(
                models["lr"](),
                optimizers[opt_name](),
                _cluster(),
                config=RowSGDConfig(
                    batch_size=BATCH, iterations=ITERATIONS, eval_every=2, seed=3
                ),
            )
            trainer.load(_data())
            result = trainer.fit()
            entry("{}/lr/{}".format(system, opt_name), result, result.final_params)

    # --- SSP: staleness 0 (degenerates to BSP) and 2 (pipelined)
    for staleness in (0, 2):
        trainer = StaleSyncPSTrainer(
            models["lr"](),
            optimizers["sgd"](),
            _cluster(),
            config=RowSGDConfig(
                batch_size=BATCH, iterations=ITERATIONS, eval_every=2, seed=3
            ),
            staleness=staleness,
        )
        trainer.load(_data())
        result = trainer.fit()
        entry("ssp{}/lr/sgd".format(staleness), result, result.final_params)

    # --- column-partitioned MLPs
    for opt_name in ("sgd", "adam"):
        mlp = MLPColumnTrainer(
            ColumnMLP(hidden=8),
            optimizers[opt_name](),
            _cluster(),
            batch_size=BATCH,
            iterations=ITERATIONS,
            eval_every=2,
            seed=3,
        )
        mlp.load(_data())
        result = mlp.fit()
        params = np.concatenate(
            [mlp.current_w1().ravel()]
            + [mlp.head()[k].ravel() for k in sorted(mlp.head())]
        )
        entry("mlp8/{}".format(opt_name), result, params)

    deep = DeepMLPColumnTrainer(
        DeepColumnMLP([8, 4]),
        optimizers["sgd"](),
        _cluster(),
        batch_size=BATCH,
        iterations=ITERATIONS,
        eval_every=2,
        seed=3,
    )
    deep.load(_data())
    result = deep.fit()
    params = np.concatenate(
        [deep.current_w1().ravel()]
        + [deep.tail()[k].ravel() for k in sorted(deep.tail())]
    )
    entry("deep_mlp8x4/sgd", result, params)

    # --- CoCoA and coordinate descent (their own optimizers)
    cocoa = CoCoATrainer(_cluster(), lam=0.1, local_steps=40, iterations=ITERATIONS,
                         eval_every=2, seed=3)
    cocoa.load(_data())
    entry("cocoa/ridge", cocoa.fit(), cocoa.current_params())

    cd = RidgeCDTrainer(_cluster(), lam=0.01, iterations=ITERATIONS, eval_every=2,
                        seed=3)
    cd.load(_data())
    entry("ridge_cd/ridge", cd.fit(), cd.current_params())

    return out


def main() -> None:
    records = record_all()
    FIXTURE.write_text(json.dumps(records, indent=1, sort_keys=True))
    print("recorded {} combos -> {}".format(len(records), FIXTURE))


if __name__ == "__main__":
    main()
