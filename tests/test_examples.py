"""Sanity checks on the shipped examples.

Full example runs take tens of seconds, so the suite compiles each
script and exercises the custom-model callbacks directly on tiny data.
"""

import pathlib
import py_compile

import numpy as np
import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_has_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert '__name__ == "__main__"' in source
        assert source.lstrip().startswith('"""')

    def test_custom_model_callbacks(self, tiny_gaussian):
        """The Fig 12 callbacks from examples/custom_model.py give the
        correct LR gradient on real data."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "custom_model_example",
            str(pathlib.Path(__file__).parent.parent / "examples" / "custom_model.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        from repro.models import LogisticRegression

        w = np.random.default_rng(0).normal(size=tiny_gaussian.n_features) * 0.3
        stats = module.compute_stat(tiny_gaussian.features, w).reshape(-1, 1)
        grad = module.compute_gradient(
            tiny_gaussian.features, tiny_gaussian.labels, stats, w
        )
        reference = LogisticRegression().gradient(
            tiny_gaussian.features, tiny_gaussian.labels, w
        )
        assert np.allclose(grad, reference, atol=1e-10)
        assert module.reduce_stat(np.ones(3), np.ones(3)).tolist() == [2.0, 2.0, 2.0]
