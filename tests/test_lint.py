"""Tests for the repro.lint static-analysis framework (R001-R006)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintEngine, registered_rules
from repro.lint.cli import main as lint_main
from repro.lint.engine import FileContext
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
ALL_RULE_IDS = ("R001", "R002", "R003", "R004", "R005", "R006")


def lint_fixture(name: str, rule_id: str):
    engine = LintEngine(select=[rule_id])
    return engine.lint_file(str(FIXTURES / name))


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_trigger_fixture_fires(rule_id):
    name = "{}_trigger.py".format(rule_id.lower())
    findings = lint_fixture(name, rule_id)
    assert findings, "{} produced no {} findings".format(name, rule_id)
    assert all(f.rule_id == rule_id for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_pass_fixture_is_clean(rule_id):
    name = "{}_pass.py".format(rule_id.lower())
    assert lint_fixture(name, rule_id) == []


def test_trigger_counts():
    """Pin the exact number of violations each trigger fixture encodes."""
    expected = {"R001": 4, "R002": 2, "R003": 4, "R004": 3, "R005": 2, "R006": 2}
    for rule_id, count in expected.items():
        name = "{}_trigger.py".format(rule_id.lower())
        assert len(lint_fixture(name, rule_id)) == count, rule_id


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
def test_registry_has_all_rules():
    rules = registered_rules()
    assert set(ALL_RULE_IDS) <= set(rules)
    for rule_id, cls in rules.items():
        assert cls.rule_id == rule_id
        assert cls.title
        assert cls.severity in ("error", "warning")


def test_select_unknown_rule_raises():
    with pytest.raises(ValueError):
        LintEngine(select=["R999"])


def test_ignore_drops_rule():
    engine = LintEngine(ignore=["R001"])
    findings = engine.lint_file(str(FIXTURES / "r001_trigger.py"))
    assert all(f.rule_id != "R001" for f in findings)


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    findings = LintEngine().lint_file(str(bad))
    assert len(findings) == 1
    assert findings[0].rule_id == "E001"


def test_noqa_suppresses_all_rules():
    src = "import random  # lint: noqa\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []


def test_noqa_with_rule_list():
    src = "import random  # lint: noqa[R001]\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []
    other = "import random  # lint: noqa[R004]\n"
    assert LintEngine(select=["R001"]).lint_source(other, "snippet.py")


def test_test_code_is_exempt_from_numeric_rules():
    src = "import random\nx = random.random()\n"
    findings = LintEngine(select=["R001"]).lint_source(
        src, "tests/test_something.py"
    )
    assert findings == []


def test_fixture_dir_is_not_test_code():
    ctx = FileContext("tests/lint_fixtures/r001_trigger.py", "")
    assert not ctx.is_test_code()
    assert ctx.in_protocol_path()


def test_protocol_dirs_classification():
    assert FileContext("src/repro/sim/clock.py", "").in_protocol_path()
    assert FileContext("src/repro/net/network.py", "").in_protocol_path()
    assert not FileContext("src/repro/plots/figures.py", "").in_protocol_path()


def test_finding_render_format():
    finding = Finding(
        path="a.py", line=3, col=1, rule_id="R001",
        severity="error", message="msg", fix_hint="hint",
    )
    rendered = finding.render()
    assert "a.py:3:1" in rendered
    assert "[R001]" in rendered
    assert "hint" in rendered


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_clean_on_pass_fixture(capsys):
    rc = lint_main([str(FIXTURES / "r006_pass.py")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_cli_nonzero_on_trigger_fixtures(capsys):
    rc = lint_main([str(FIXTURES)])
    assert rc == 1
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_json_format(capsys):
    rc = lint_main([str(FIXTURES / "r002_trigger.py"), "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    first = payload["findings"][0]
    assert {"path", "line", "col", "rule_id", "severity", "message"} <= set(first)


def test_cli_select_and_ignore(capsys):
    rc = lint_main([str(FIXTURES), "--select", "R003"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "R003" in out and "R001" not in out

    # R001 also flags wall-clock calls as entropy, so ignore both.
    rc = lint_main([str(FIXTURES / "r003_trigger.py"), "--ignore", "R001,R003"])
    capsys.readouterr()
    assert rc == 0


def test_cli_unknown_rule_is_usage_error(capsys):
    rc = lint_main(["--select", "R999", str(FIXTURES)])
    assert rc == 2


def test_cli_list_rules(capsys):
    rc = lint_main(["--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


# ----------------------------------------------------------------------
# the self-clean meta-test: the repo must pass its own linter
# ----------------------------------------------------------------------
def test_repo_source_tree_is_lint_clean():
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["findings"] == []
