"""Tests for the repro.lint static-analysis framework (R001-R006, R018, R019).

The whole-program rules (R007-R011) are covered in
``tests/test_lint_program.py``; this file owns the per-file rules, the
engine/CLI plumbing (discovery, exit codes, noqa), and the self-clean
meta-test.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintEngine, registered_rules
from repro.lint.cli import main as lint_main
from repro.lint.engine import FileContext
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
ALL_RULE_IDS = ("R001", "R002", "R003", "R004", "R005", "R006", "R018", "R019")
PROGRAM_RULE_IDS = (
    "R007", "R008", "R009", "R010", "R011", "R012", "R013", "R014",
)


def lint_fixture(name: str, rule_id: str):
    engine = LintEngine(select=[rule_id])
    return engine.lint_file(str(FIXTURES / name))


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_trigger_fixture_fires(rule_id):
    name = "{}_trigger.py".format(rule_id.lower())
    findings = lint_fixture(name, rule_id)
    assert findings, "{} produced no {} findings".format(name, rule_id)
    assert all(f.rule_id == rule_id for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_pass_fixture_is_clean(rule_id):
    name = "{}_pass.py".format(rule_id.lower())
    assert lint_fixture(name, rule_id) == []


def test_trigger_counts():
    """Pin the exact number of violations each trigger fixture encodes."""
    expected = {
        "R001": 4, "R002": 2, "R003": 4, "R004": 3, "R005": 2, "R006": 2,
        "R018": 7, "R019": 6,
    }
    for rule_id, count in expected.items():
        name = "{}_trigger.py".format(rule_id.lower())
        assert len(lint_fixture(name, rule_id)) == count, rule_id


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
def test_registry_has_all_rules():
    rules = registered_rules()
    assert set(ALL_RULE_IDS) <= set(rules)
    for rule_id, cls in rules.items():
        assert cls.rule_id == rule_id
        assert cls.title
        assert cls.severity in ("error", "warning")


def test_select_unknown_rule_raises():
    with pytest.raises(ValueError):
        LintEngine(select=["R999"])


def test_ignore_drops_rule():
    engine = LintEngine(ignore=["R001"])
    findings = engine.lint_file(str(FIXTURES / "r001_trigger.py"))
    assert all(f.rule_id != "R001" for f in findings)


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    findings = LintEngine().lint_file(str(bad))
    assert len(findings) == 1
    assert findings[0].rule_id == "E001"


def test_noqa_suppresses_all_rules():
    src = "import random  # lint: noqa\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []


def test_noqa_with_rule_list():
    src = "import random  # lint: noqa[R001]\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []
    other = "import random  # lint: noqa[R004]\n"
    assert LintEngine(select=["R001"]).lint_source(other, "snippet.py")


def test_noqa_multiple_comments_on_one_line():
    """Every noqa comment on the line counts, not just the first."""
    src = "import numpy as np\nx = np.random.rand()  # lint: noqa[R004] # lint: noqa[R001]\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []
    unsuppressed = "import numpy as np\nx = np.random.rand()  # lint: noqa[R004]\n"
    assert LintEngine(select=["R001"]).lint_source(unsuppressed, "snippet.py")


def test_noqa_whitespace_inside_bracket_list():
    src = "import numpy as np\nx = np.random.rand()  # lint: noqa[ R001 , R004 ]\n"
    assert LintEngine(select=["R001"]).lint_source(src, "snippet.py") == []


def test_noqa_unknown_rule_id_is_inert():
    src = "import numpy as np\nx = np.random.rand()  # lint: noqa[R999]\n"
    findings = LintEngine(select=["R001"]).lint_source(src, "snippet.py")
    assert [f.rule_id for f in findings] == ["R001"]


def test_test_code_is_exempt_from_numeric_rules():
    src = "import random\nx = random.random()\n"
    findings = LintEngine(select=["R001"]).lint_source(
        src, "tests/test_something.py"
    )
    assert findings == []


def test_fixture_dir_is_not_test_code():
    ctx = FileContext("tests/lint_fixtures/r001_trigger.py", "")
    assert not ctx.is_test_code()
    assert ctx.in_protocol_path()


def test_protocol_dirs_classification():
    assert FileContext("src/repro/sim/clock.py", "").in_protocol_path()
    assert FileContext("src/repro/net/network.py", "").in_protocol_path()
    assert not FileContext("src/repro/plots/figures.py", "").in_protocol_path()


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------
def test_discovery_skips_pycache_and_hidden_dirs(tmp_path):
    (tmp_path / "ok.py").write_text("import random\n", encoding="utf-8")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("import random\n", encoding="utf-8")
    (tmp_path / ".venv").mkdir()
    (tmp_path / ".venv" / "hidden.py").write_text("import random\n", encoding="utf-8")
    (tmp_path / "pkg.egg-info").mkdir()
    (tmp_path / "pkg.egg-info" / "meta.py").write_text("import random\n", encoding="utf-8")
    findings = LintEngine(select=["R001"]).lint_paths([str(tmp_path)])
    assert {Path(f.path).name for f in findings} == {"ok.py"}


def test_discovery_skips_binary_nonutf8_and_generated(tmp_path):
    (tmp_path / "ok.py").write_text("import random\n", encoding="utf-8")
    (tmp_path / "binary.py").write_bytes(b"\x00\x01\x02compiled junk")
    (tmp_path / "latin.py").write_bytes("x = 'caf\xe9'\nimport random\n".encode("latin-1"))
    (tmp_path / "generated.py").write_text(
        "# @generated by a build tool\nimport random\n", encoding="utf-8"
    )
    findings = LintEngine(select=["R001"]).lint_paths([str(tmp_path)])
    assert {Path(f.path).name for f in findings} == {"ok.py"}


def test_discovery_never_recurses_into_fixture_trees():
    """Linting tests/ must not drown in the deliberately-dirty fixtures;
    naming the fixture dir explicitly (as these tests do) still works."""
    findings = LintEngine(program=False).lint_paths([str(FIXTURES.parent)])
    assert all("lint_fixtures" not in f.path for f in findings)
    assert LintEngine(select=["R001"]).lint_paths([str(FIXTURES / "r001_trigger.py")])


def test_discovery_missing_path_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        LintEngine().lint_paths([str(tmp_path / "no_such_file.py")])


def test_finding_render_format():
    finding = Finding(
        path="a.py", line=3, col=1, rule_id="R001",
        severity="error", message="msg", fix_hint="hint",
    )
    rendered = finding.render()
    assert "a.py:3:1" in rendered
    assert "[R001]" in rendered
    assert "hint" in rendered


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_clean_on_pass_fixture(capsys):
    rc = lint_main([str(FIXTURES / "r006_pass.py")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_cli_nonzero_on_trigger_fixtures(capsys):
    rc = lint_main([str(FIXTURES)])
    assert rc == 1
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_json_format(capsys):
    rc = lint_main([str(FIXTURES / "r002_trigger.py"), "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    first = payload["findings"][0]
    assert {"path", "line", "col", "rule_id", "severity", "message"} <= set(first)


def test_cli_sarif_format(capsys):
    rc = lint_main(
        [str(FIXTURES / "program" / "r012_trigger.py"),
         "--select", "R012", "--format", "sarif"]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["R012"]
    assert run["results"], "trigger fixture must produce SARIF results"
    for result in run["results"]:
        assert result["ruleId"] == "R012"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        # SARIF regions are 1-based
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_cli_sarif_clean_is_valid(capsys):
    rc = lint_main(
        [str(FIXTURES / "program" / "r012_pass.py"),
         "--select", "R012", "--format", "sarif"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"] == []


def test_cli_select_and_ignore(capsys):
    rc = lint_main([str(FIXTURES), "--select", "R003"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "R003" in out and "R001" not in out

    # R001 also flags wall-clock calls as entropy, so ignore both.
    rc = lint_main([str(FIXTURES / "r003_trigger.py"), "--ignore", "R001,R003"])
    capsys.readouterr()
    assert rc == 0


def test_cli_unknown_rule_is_usage_error(capsys):
    rc = lint_main(["--select", "R999", str(FIXTURES)])
    assert rc == 2


def test_cli_missing_path_is_usage_error(capsys):
    rc = lint_main(["/no/such/path_for_lint.py"])
    capsys.readouterr()
    assert rc == 2


def test_cli_internal_crash_is_exit_3(monkeypatch, capsys):
    """A rule raising is a linter bug (exit 3), not a usage error."""
    from repro.lint import program as program_module

    def boom(self):
        raise RuntimeError("injected rule crash")

    monkeypatch.setattr(program_module.ImportLayeringRule, "run", boom)
    rc = lint_main([str(FIXTURES / "r006_pass.py")])
    assert rc == 3
    assert "internal error" in capsys.readouterr().err


def test_cli_exit_codes_are_distinct(capsys):
    """0 clean / 1 findings / 2 usage — the full ladder, one test."""
    assert lint_main([str(FIXTURES / "r006_pass.py")]) == 0
    assert lint_main([str(FIXTURES / "r001_trigger.py"), "--select", "R001"]) == 1
    assert lint_main(["--select", "bogus", str(FIXTURES)]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    rc = lint_main(["--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS + PROGRAM_RULE_IDS:
        assert rule_id in out
    assert "program" in out


def test_cli_json_reports_executed_rules(capsys):
    rc = lint_main([str(FIXTURES / "r006_pass.py"), "--format", "json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"] is True
    assert set(ALL_RULE_IDS + PROGRAM_RULE_IDS) <= set(payload["rules"])


# ----------------------------------------------------------------------
# the self-clean meta-test: the repo must pass its own linter
# ----------------------------------------------------------------------
def test_repo_source_tree_is_lint_clean():
    """src, tests, and examples all pass R001-R011 — the same invocation
    CI runs, program mode included."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "tests", "examples",
         "--format", "json"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["findings"] == []
    assert set(ALL_RULE_IDS + PROGRAM_RULE_IDS) <= set(payload["rules"])
