"""Edge-case behaviour of the ColumnSGD driver."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver, train_columnsgd
from repro.errors import PartitionError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


class TestDriverEdges:
    def test_more_workers_than_features(self):
        from repro.datasets import make_classification

        data = make_classification(50, 4, nnz_per_row=2, seed=1)
        cluster = SimulatedCluster(CLUSTER1)  # 8 workers, 4 features
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), cluster,
            config=ColumnSGDConfig(batch_size=8, iterations=2, block_size=16),
        )
        with pytest.raises(PartitionError):
            driver.load(data)

    def test_batch_larger_than_dataset(self, tiny_binary):
        """Sampling is with replacement, so B > N is legal."""
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.1), cluster,
            batch_size=1000, iterations=3, eval_every=0, block_size=64,
        )
        assert result.n_iterations == 3

    def test_single_worker_cluster(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(1))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.1), cluster,
            batch_size=32, iterations=5, eval_every=5, block_size=64,
        )
        assert result.final_loss() is not None

    def test_block_size_larger_than_dataset(self, tiny_binary):
        """One giant block: the two-phase index degenerates gracefully."""
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.1), cluster,
            batch_size=32, iterations=3, eval_every=0, block_size=100_000,
        )
        assert result.n_iterations == 3

    def test_iterations_override_in_fit(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.1), cluster,
            config=ColumnSGDConfig(batch_size=16, iterations=100,
                                   eval_every=0, block_size=64),
        )
        driver.load(tiny_binary)
        assert driver.fit(iterations=4).n_iterations == 4

    def test_repeated_fit_continues_training(self, small_binary):
        """Two fits on one driver keep the model state (iteration seeds
        restart, but parameters carry over)."""
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        driver = ColumnSGDDriver(
            LogisticRegression(), SGD(0.5), cluster,
            config=ColumnSGDConfig(batch_size=100, iterations=10,
                                   eval_every=0, block_size=256),
        )
        driver.load(small_binary)
        driver.fit()
        loss_after_first = driver.evaluate_loss()
        driver.fit()
        assert driver.evaluate_loss() < loss_after_first

    def test_batch_size_one(self, tiny_binary):
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        result = train_columnsgd(
            tiny_binary, LogisticRegression(), SGD(0.05), cluster,
            batch_size=1, iterations=5, eval_every=0, block_size=64,
        )
        assert result.n_iterations == 5
        assert np.isfinite(result.final_params).all()
