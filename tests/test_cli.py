"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.datasets import make_classification, write_libsvm


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_lists_profiles_and_registries(self):
        code, text = run_cli(["info"])
        assert code == 0
        for token in ("avazu", "kdd12", "wx", "fm", "adagrad", "columnsgd"):
            assert token in text


class TestDescribe:
    def test_describe_profile(self):
        code, text = run_cli(["describe", "--dataset", "kddb", "--rows", "500"])
        assert code == 0
        assert "sparsity" in text
        assert "hottest" in text


class TestTrain:
    def test_train_on_profile(self):
        code, text = run_cli([
            "train", "--dataset", "avazu", "--rows", "800",
            "--iterations", "5", "--batch-size", "100", "--eval-every", "5",
        ])
        assert code == 0
        assert "ColumnSGD on lr/avazu" in text
        assert "per-iteration" in text

    def test_train_on_libsvm_file(self, tmp_path):
        data = make_classification(200, 50, seed=1)
        path = tmp_path / "data.libsvm"
        write_libsvm(data, path)
        code, text = run_cli([
            "train", "--dataset", str(path), "--iterations", "3",
            "--batch-size", "32", "--workers", "2", "--eval-every", "0",
        ])
        assert code == 0
        assert "data" in text

    def test_train_other_system(self):
        code, text = run_cli([
            "train", "--dataset", "avazu", "--rows", "800", "--system", "mxnet",
            "--iterations", "3", "--batch-size", "64", "--eval-every", "0",
        ])
        assert code == 0
        assert "MXNet" in text

    def test_train_with_backup(self):
        code, text = run_cli([
            "train", "--dataset", "avazu", "--rows", "800", "--backup", "1",
            "--iterations", "3", "--batch-size", "64", "--eval-every", "0",
        ])
        assert code == 0
        assert "backup1" in text

    def test_missing_dataset_errors(self):
        with pytest.raises(SystemExit):
            run_cli(["train", "--dataset", "/no/such/file.libsvm",
                     "--iterations", "1"])

    def test_mlr_requires_classes(self):
        with pytest.raises(SystemExit):
            run_cli(["train", "--dataset", "avazu", "--rows", "400",
                     "--model", "mlr", "--iterations", "1"])

    def test_save_and_evaluate_roundtrip(self, tmp_path):
        ckpt = str(tmp_path / "model.npz")
        code, text = run_cli([
            "train", "--dataset", "avazu", "--rows", "1500",
            "--iterations", "30", "--batch-size", "200", "--eval-every", "0",
            "--save", ckpt,
        ])
        assert code == 0
        assert "checkpoint written" in text
        code, text = run_cli([
            "evaluate", "--checkpoint", ckpt, "--dataset", "avazu",
            "--rows", "1500",
        ])
        assert code == 0
        assert "accuracy" in text
        assert "auc" in text


class TestCompare:
    def test_compare_two_systems(self):
        code, text = run_cli([
            "compare", "--dataset", "avazu", "--rows", "800",
            "--systems", "columnsgd", "mxnet",
            "--iterations", "4", "--batch-size", "64", "--eval-every", "2",
        ])
        assert code == 0
        assert "per-iteration time" in text
        assert "time to loss" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "avazu",
                                       "--model", "resnet"])
