"""Unit tests for the RowSGD row partitioner."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import RowPartitioner


class TestRowPartitioner:
    def test_shards_cover_all_rows(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 4)
        assert sum(part.shard_sizes()) == tiny_binary.n_rows

    def test_shards_balanced(self, tiny_binary):
        sizes = RowPartitioner(tiny_binary, 7).shard_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_by_default(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 3)
        assert np.array_equal(part.shard(0).labels, tiny_binary.labels[: part.shard_sizes()[0]])

    def test_shuffled_changes_layout(self, tiny_binary):
        plain = RowPartitioner(tiny_binary, 3, shuffled=False)
        shuffled = RowPartitioner(tiny_binary, 3, shuffled=True, seed=1)
        assert not np.array_equal(plain.shard(0).labels, shuffled.shard(0).labels)

    def test_batch_share_sums_to_batch(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 7)
        for batch in (1, 7, 100, 1001):
            assert sum(part.batch_share(batch, w) for w in range(7)) == batch

    def test_sample_deterministic(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 4, seed=3)
        a = part.sample_local_batch(5, 40, 2)
        b = part.sample_local_batch(5, 40, 2)
        assert np.array_equal(a.labels, b.labels)

    def test_sample_sizes(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 4)
        batches = [part.sample_local_batch(0, 10, w) for w in range(4)]
        assert sum(b.n_rows for b in batches) == 10

    def test_sample_rows_from_own_shard(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 2)
        shard_labels = set(part.shard(1).labels.tolist())
        batch = part.sample_local_batch(0, 50, 1)
        assert set(batch.labels.tolist()) <= shard_labels

    def test_workers_use_different_streams(self, tiny_binary):
        part = RowPartitioner(tiny_binary, 2, seed=0)
        a = part.sample_local_batch(0, 20, 0)
        b = part.sample_local_batch(0, 20, 1)
        assert not np.array_equal(a.features.to_dense(), b.features.to_dense())

    def test_too_many_workers(self, tiny_binary):
        with pytest.raises(PartitionError):
            RowPartitioner(tiny_binary, tiny_binary.n_rows + 1)
