"""Unit tests for ColumnWorker."""

import numpy as np
import pytest

from repro.core import ColumnWorker, PartitionState
from repro.errors import WorkerFailedError
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.partition import dispatch_block_based, make_assignment
from repro.sim import CLUSTER1, SimulatedCluster


@pytest.fixture
def worker_setup(tiny_binary):
    cluster = SimulatedCluster(CLUSTER1.with_workers(2))
    asg = make_assignment("round_robin", tiny_binary.n_features, 2)
    stores, block_sizes, _ = dispatch_block_based(tiny_binary, asg, cluster, block_size=64)
    model = LogisticRegression()
    partitions = []
    for p in range(2):
        cols = asg.columns_of(p)
        partitions.append(
            PartitionState(p, stores[p], cols, np.zeros(cols.size), SGD(0.5))
        )
    return tiny_binary, model, partitions, block_sizes


class TestColumnWorker:
    def test_single_partition_statistics(self, worker_setup):
        data, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, [partitions[0]])
        draws = [(0, 1), (0, 2), (1, 0)]
        stats, nnz = worker.compute_statistics(draws)
        assert stats.shape == (3, 1)
        assert nnz >= 0
        assert np.all(stats == 0.0)  # zero model -> zero dots

    def test_multi_partition_statistics_sum(self, worker_setup):
        data, model, partitions, _ = worker_setup
        rng = np.random.default_rng(0)
        for p in partitions:
            p.params[...] = rng.normal(size=p.params.shape)
        solo = [ColumnWorker(k, model, [partitions[k]]) for k in range(2)]
        combined = ColumnWorker(0, model, partitions)
        draws = [(0, 5), (1, 3)]
        expected = sum(w.compute_statistics(draws)[0] for w in solo)
        got, _ = combined.compute_statistics(draws)
        assert np.allclose(got, expected)

    def test_update_requires_cached_batch(self, worker_setup):
        _, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, [partitions[0]])
        with pytest.raises(WorkerFailedError):
            worker.update_model(np.zeros((2, 1)), 0)

    def test_update_changes_params(self, worker_setup):
        data, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, [partitions[0]])
        draws = [(0, i) for i in range(8)]
        stats, _ = worker.compute_statistics(draws)
        before = partitions[0].params.copy()
        worker.update_model(stats, 0)
        assert not np.array_equal(before, partitions[0].params)

    def test_only_partitions_filter(self, worker_setup):
        _, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, partitions)
        draws = [(0, i) for i in range(4)]
        stats, _ = worker.compute_statistics(draws)
        before1 = partitions[1].params.copy()
        worker.update_model(stats, 0, only_partitions={0})
        assert np.array_equal(before1, partitions[1].params)

    def test_cached_batch_nnz(self, worker_setup):
        _, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, partitions)
        assert worker.cached_batch_nnz() == 0
        _, nnz = worker.compute_statistics([(0, 0), (0, 1)])
        assert worker.cached_batch_nnz() == nnz

    def test_fail_and_recover(self, worker_setup):
        _, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, [partitions[0]])
        worker.fail()
        assert worker.failed
        with pytest.raises(WorkerFailedError):
            worker.compute_statistics([(0, 0)])
        worker.recover([partitions[0]])
        assert not worker.failed
        worker.compute_statistics([(0, 0)])

    def test_bookkeeping(self, worker_setup):
        _, model, partitions, _ = worker_setup
        worker = ColumnWorker(0, model, partitions)
        assert worker.stored_nnz() == sum(p.store.nnz for p in partitions)
        assert worker.stored_bytes() > 0
        assert worker.model_elements() == sum(p.params.size for p in partitions)
        assert worker.partition_ids() == [0, 1]
