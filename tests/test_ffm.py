"""Tests for the Field-aware FM extension."""

import numpy as np
import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.datasets import make_classification
from repro.models import L2
from repro.models.ffm import FieldAwareFM
from repro.optim import SGD
from repro.partition import make_assignment
from repro.sim import CLUSTER1, SimulatedCluster
from tests.test_models import finite_difference_gradient


def small_setup(n_features=12, n_fields=3, seed=40):
    rng = np.random.default_rng(seed)
    field_of = rng.integers(0, n_fields, size=n_features)
    field_of[:n_fields] = np.arange(n_fields)  # every field populated
    data = make_classification(
        40, n_features, nnz_per_row=5, binary_features=False, seed=seed
    )
    model = FieldAwareFM(field_of, n_factors=2)
    params = model.init_params(n_features, seed=seed)
    params[:, 2:] += rng.normal(0, 0.1, size=params[:, 2:].shape)
    return data, model, params


class TestFFMMath:
    def test_raw_score_matches_pairwise_definition(self):
        """Equation check: statistics-based score equals the explicit
        sum over feature pairs <v_{i,field(j)}, v_{j,field(i)}> x_i x_j."""
        data, model, params = small_setup()
        stats = model.compute_statistics(data.features, params)
        scores = model._raw_scores(stats)
        dense = data.features.to_dense()
        fields = model.field_of
        w = params[:, 1]
        m = data.n_features
        for i in range(8):
            x = dense[i]
            expected = float(np.dot(w, x))
            for p in range(m):
                for q in range(p + 1, m):
                    v_p = params[p, 2 + fields[q] * 2: 2 + fields[q] * 2 + 2]
                    v_q = params[q, 2 + fields[p] * 2: 2 + fields[p] * 2 + 2]
                    expected += float(np.dot(v_p, v_q)) * x[p] * x[q]
            assert scores[i] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_gradient_matches_finite_difference(self):
        data, model, params = small_setup()
        grad = model.gradient(data.features, data.labels, params)
        numeric = finite_difference_gradient(model, data.features, data.labels, params)
        # column 0 is frozen metadata: its analytic gradient is zero by
        # construction, and the numeric one is meaningless there
        assert np.all(grad[:, 0] == 0.0)
        assert np.allclose(grad[:, 1:], numeric[:, 1:], atol=1e-5)

    def test_gradient_with_l2_keeps_field_column_frozen(self):
        data, _, _ = small_setup()
        rng = np.random.default_rng(0)
        field_of = rng.integers(0, 3, size=12)
        model = FieldAwareFM(field_of, n_factors=2, regularizer=L2(0.1))
        params = model.init_params(12, seed=1)
        grad = model.gradient(data.features, data.labels, params)
        assert np.all(grad[:, 0] == 0.0)

    def test_statistics_additive_across_column_shards(self):
        data, model, params = small_setup()
        asg = make_assignment("round_robin", data.n_features, 3)
        full = model.compute_statistics(data.features, params)
        partial = sum(
            model.compute_statistics(
                data.features.select_columns(asg.columns_of(k)),
                params[asg.columns_of(k)],
            )
            for k in range(3)
        )
        assert np.allclose(full, partial, atol=1e-10)

    def test_gradient_recoverable_per_partition(self):
        data, model, params = small_setup()
        asg = make_assignment("hash", data.n_features, 3)
        stats = model.compute_statistics(data.features, params)
        full_grad = model.gradient_from_statistics(
            data.features, data.labels, stats, params
        )
        for k in range(3):
            cols = asg.columns_of(k)
            local = model.gradient_from_statistics(
                data.features.select_columns(cols), data.labels, stats, params[cols]
            )
            assert np.allclose(full_grad[cols], local, atol=1e-10)

    def test_statistics_width(self):
        _, model, _ = small_setup(n_fields=3)
        assert model.statistics_width == 1 + 9 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FieldAwareFM(np.array([0, 1]), n_factors=0)
        with pytest.raises(ValueError):
            FieldAwareFM(np.array([-1, 0]))
        model = FieldAwareFM(np.array([0, 1, 1]))
        with pytest.raises(ValueError, match="features"):
            model.init_params(5)


class TestFFMTraining:
    def test_training_reduces_loss(self):
        data, model, _ = small_setup(n_features=20, seed=41)
        params = model.init_params(20, seed=41)
        initial = model.loss(data.features, data.labels, params)
        for t in range(150):
            params -= 0.2 * model.gradient(data.features, data.labels, params)
        assert model.loss(data.features, data.labels, params) < initial
        # the field column never moved
        assert np.array_equal(params[:, 0], model.field_of.astype(float))

    def test_distributed_exactness(self, tiny_gaussian):
        rng = np.random.default_rng(42)
        field_of = rng.integers(0, 3, size=tiny_gaussian.n_features)
        finals = []
        for k in (1, 4):
            model = FieldAwareFM(field_of, n_factors=2)
            cluster = SimulatedCluster(CLUSTER1.with_workers(k))
            config = ColumnSGDConfig(batch_size=32, iterations=8, eval_every=0,
                                     seed=9, block_size=64)
            driver = ColumnSGDDriver(model, SGD(0.05), cluster, config)
            driver.load(tiny_gaussian)
            finals.append(driver.fit().final_params)
        assert np.allclose(finals[0], finals[1], atol=1e-9)

    def test_ffm_beats_linear_on_field_interactions(self):
        """Labels driven by a cross-field product: FFM captures it."""
        rng = np.random.default_rng(43)
        n, m = 1200, 12
        field_of = np.array([0] * 6 + [1] * 6)
        dense = rng.normal(size=(n, m))
        labels = np.where(dense[:, 0] * dense[:, 6] > 0, 1.0, -1.0)
        from repro.datasets import Dataset
        from repro.linalg import CSRMatrix

        data = Dataset(CSRMatrix.from_dense(dense), labels, name="cross")
        model = FieldAwareFM(field_of, n_factors=2)
        params = model.init_params(m, seed=2)
        for t in range(400):
            params -= 0.1 * model.gradient(data.features, data.labels, params)
        final = model.loss(data.features, data.labels, params)
        assert final < 0.4  # LR would stall near log(2)=0.69

    def test_predictions_are_probabilities(self):
        data, model, params = small_setup()
        probs = model.predict(data.features, params)
        assert np.all((probs >= 0) & (probs <= 1))
