"""Tests for the extended GLM family: SmoothSVM and HuberRegression."""

import numpy as np
import pytest

from repro.datasets import Dataset, make_classification, make_regression
from repro.models import (
    HuberLoss,
    HuberRegression,
    LeastSquares,
    SmoothSVM,
    SquaredHingeLoss,
    make_model,
)
from tests.test_models import finite_difference_gradient


class TestSquaredHingeLoss:
    def test_zero_inside_margin(self):
        loss = SquaredHingeLoss()
        assert loss.loss(np.array([2.0]), np.array([1.0]))[0] == 0.0
        assert loss.derivative(np.array([2.0]), np.array([1.0]))[0] == 0.0

    def test_quadratic_outside(self):
        loss = SquaredHingeLoss()
        assert loss.loss(np.array([0.0]), np.array([1.0]))[0] == pytest.approx(0.5)

    def test_derivative_matches_numeric(self, rng):
        loss = SquaredHingeLoss()
        scores = rng.normal(size=60) * 2
        labels = rng.choice([-1.0, 1.0], 60)
        eps = 1e-6
        numeric = (loss.loss(scores + eps, labels) - loss.loss(scores - eps, labels)) / (2 * eps)
        assert np.allclose(loss.derivative(scores, labels), numeric, atol=1e-5)

    def test_continuous_at_margin(self):
        loss = SquaredHingeLoss()
        just_in = loss.derivative(np.array([1.0 - 1e-9]), np.array([1.0]))[0]
        just_out = loss.derivative(np.array([1.0 + 1e-9]), np.array([1.0]))[0]
        assert abs(just_in - just_out) < 1e-6


class TestHuberLoss:
    def test_quadratic_inside_delta(self):
        loss = HuberLoss(delta=1.0)
        assert loss.loss(np.array([0.5]), np.array([0.0]))[0] == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        assert loss.loss(np.array([3.0]), np.array([0.0]))[0] == pytest.approx(2.5)

    def test_gradient_bounded(self, rng):
        loss = HuberLoss(delta=0.5)
        scores = rng.normal(size=100) * 10
        labels = rng.normal(size=100)
        assert np.all(np.abs(loss.derivative(scores, labels)) <= 0.5 + 1e-12)

    def test_derivative_matches_numeric(self, rng):
        loss = HuberLoss(delta=1.3)
        scores = rng.normal(size=60) * 3
        labels = rng.normal(size=60)
        safe = np.abs(np.abs(scores - labels) - 1.3) > 1e-4
        eps = 1e-6
        numeric = (loss.loss(scores + eps, labels) - loss.loss(scores - eps, labels)) / (2 * eps)
        assert np.allclose(loss.derivative(scores, labels)[safe], numeric[safe], atol=1e-5)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestSmoothSVM:
    def test_gradient_matches_finite_difference(self, rng):
        data = make_classification(40, 15, nnz_per_row=5, binary_features=False, seed=21)
        model = SmoothSVM()
        w = rng.normal(size=15) * 0.4
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_trains_distributed_exactly(self, tiny_gaussian):
        """SmoothSVM passes the exactness invariant even on binary data
        (the reason it exists: no subgradient kink)."""
        from repro.core import ColumnSGDConfig, ColumnSGDDriver
        from repro.optim import SGD
        from repro.sim import CLUSTER1, SimulatedCluster

        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        config = ColumnSGDConfig(batch_size=32, iterations=12, eval_every=0,
                                 seed=8, block_size=64)
        driver = ColumnSGDDriver(SmoothSVM(), SGD(0.2), cluster, config)
        driver.load(tiny_gaussian)
        result = driver.fit()

        w = SmoothSVM().init_params(tiny_gaussian.n_features)
        opt = SGD(0.2)
        index = driver._index
        for t in range(12):
            rows = index.to_global_rows(index.sample(t, 32))
            batch = tiny_gaussian.take(rows)
            opt.step(w, SmoothSVM().gradient(batch.features, batch.labels, w), t)
        assert np.allclose(result.final_params, w, atol=1e-10)

    def test_predict_labels(self, tiny_binary, rng):
        model = SmoothSVM()
        w = rng.normal(size=tiny_binary.n_features)
        labels = model.predict_labels(tiny_binary.features, w)
        assert set(np.unique(labels)) <= {-1.0, 1.0}


class TestHuberRegression:
    def test_gradient_matches_finite_difference(self, rng):
        data = make_regression(40, 12, nnz_per_row=4, seed=22)
        model = HuberRegression(delta=1.0)
        w = rng.normal(size=12) * 0.4
        grad = model.gradient(data.features, data.labels, w)
        numeric = finite_difference_gradient(model, data.features, data.labels, w)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_robust_to_label_outliers(self):
        """Huber ends closer to the clean solution than least squares
        when a few labels are wildly corrupted."""
        clean = make_regression(400, 20, nnz_per_row=6, noise_std=0.05, seed=23)
        corrupted_labels = clean.labels.copy()
        corrupted_labels[:8] += 500.0  # 2% gross outliers
        corrupted = Dataset(clean.features, corrupted_labels, name="corrupted")

        def fit(model, lr, steps=400):
            w = model.init_params(20)
            for t in range(steps):
                w -= lr * model.gradient(corrupted.features, corrupted.labels, w)
            return w

        w_ls = fit(LeastSquares(), 0.02)
        w_huber = fit(HuberRegression(delta=1.0), 0.05)
        ls_clean_loss = LeastSquares().loss(clean.features, clean.labels, w_ls)
        huber_clean_loss = LeastSquares().loss(clean.features, clean.labels, w_huber)
        assert huber_clean_loss < ls_clean_loss

    def test_registry(self):
        assert make_model("smooth_svm").name == "smooth_svm"
        assert make_model("huber", delta=2.0).delta == 2.0
