"""Tests for the experiment harness (runner + report)."""

import pytest

from repro.core.results import IterationRecord, TrainingResult
from repro.experiments import (
    ExperimentSpec,
    convergence_table,
    iteration_time_table,
    loss_series,
    render_curve,
    run_comparison,
    run_system,
)
from repro.sim import CLUSTER1


def tiny_spec(**overrides):
    defaults = dict(
        dataset="avazu",
        model="lr",
        systems=["columnsgd", "mxnet"],
        batch_size=32,
        iterations=4,
        eval_every=2,
        cluster=CLUSTER1.with_workers(4),
        seed=1,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def shared_data():
    from repro.datasets import make_classification

    return make_classification(400, 200, nnz_per_row=8, seed=7, name="avazu")


class TestRunner:
    def test_run_system(self, shared_data):
        spec = tiny_spec(explicit_data=shared_data)
        result = run_system(spec, "columnsgd")
        assert result.system == "ColumnSGD"
        assert result.n_iterations >= 4

    def test_run_comparison_shares_data(self, shared_data):
        spec = tiny_spec(explicit_data=shared_data)
        results = run_comparison(spec)
        assert set(results) == {"columnsgd", "mxnet"}
        assert all(r.final_loss() is not None for r in results.values())

    def test_learning_rate_from_table3(self):
        spec = tiny_spec()
        assert spec.resolve_learning_rate() == 10.0
        assert tiny_spec(learning_rate=0.5).resolve_learning_rate() == 0.5

    def test_profile_data_generation(self):
        spec = tiny_spec()
        data = spec.materialize_data()
        assert data.name == "avazu"


class TestReport:
    def fake_result(self, system, per_iter, losses):
        result = TrainingResult(system=system, model="lr", dataset="d",
                                batch_size=10, n_workers=2)
        t = 0.0
        for i, loss in enumerate(losses):
            t += per_iter
            result.add(IterationRecord(i, t, per_iter, loss, 100))
        return result

    def test_iteration_time_table(self):
        results = {
            "columnsgd": self.fake_result("ColumnSGD", 0.05, [0.6, 0.5]),
            "mllib": self.fake_result("MLlib", 0.5, [0.6, 0.55]),
        }
        table = iteration_time_table(results)
        assert "MLlib" in table
        assert "10.0x" in table

    def test_convergence_table(self):
        results = {"columnsgd": self.fake_result("ColumnSGD", 0.1, [0.7, 0.4, 0.2])}
        table = convergence_table(results, threshold=0.45)
        assert "ColumnSGD" in table
        assert "never" not in table

    def test_convergence_table_never(self):
        results = {"x": self.fake_result("X", 0.1, [0.9, 0.8])}
        assert "never" in convergence_table(results, threshold=0.1)

    def test_loss_series_compact(self):
        result = self.fake_result("X", 0.1, [1.0 / (i + 1) for i in range(50)])
        series = loss_series(result, max_points=5)
        assert series.count("(") <= 7

    def test_render_curve(self):
        chart = render_curve([1.0, 0.5, 0.25, 0.12], width=20, height=6,
                             label="loss vs iter")
        assert "*" in chart
        assert "loss vs iter" in chart

    def test_render_curve_empty(self):
        assert render_curve([]) == "(no data)"
