"""Tests for the public model-verification helpers."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.linalg import accumulate_rows, row_dots
from repro.core import UserDefinedModel
from repro.models import LogisticRegression
from repro.models.check import ModelCheckError, check_decomposition, check_gradients
from repro.models.ffm import FieldAwareFM


@pytest.fixture
def data():
    return make_classification(40, 18, nnz_per_row=5, binary_features=False, seed=60)


class TestCheckGradients:
    def test_correct_model_passes(self, data):
        check_gradients(LogisticRegression(), data)

    def test_ffm_with_skip_columns(self, data):
        rng = np.random.default_rng(0)
        model = FieldAwareFM(rng.integers(0, 2, size=18), n_factors=2)
        check_gradients(model, data, skip_columns=(0,))

    def test_buggy_gradient_caught(self, data):
        buggy = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: row_dots(batch, params),
            # off by a factor of 2
            compute_gradient=lambda b, y, s, p: 2.0
            * accumulate_rows(b, -y / (1 + np.exp(y * s[:, 0])))
            / max(len(y), 1),
            loss=lambda s, y: float(np.mean(np.log1p(np.exp(-y * s[:, 0])))),
        )
        with pytest.raises(ModelCheckError, match="gradient check failed"):
            check_gradients(buggy, data)

    def test_sign_flip_caught(self, data):
        buggy = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: row_dots(batch, params),
            compute_gradient=lambda b, y, s, p: -accumulate_rows(
                b, -y / (1 + np.exp(y * s[:, 0]))
            ) / max(len(y), 1),
            loss=lambda s, y: float(np.mean(np.log1p(np.exp(-y * s[:, 0])))),
        )
        with pytest.raises(ModelCheckError):
            check_gradients(buggy, data)

    def test_coordinate_sampling_cap(self, data):
        # should not take minutes even with a cap smaller than params
        check_gradients(LogisticRegression(), data, max_coordinates=5)


class TestCheckDecomposition:
    def test_correct_model_passes(self, data):
        check_decomposition(LogisticRegression(), data)

    def test_all_schemes(self, data):
        for scheme in ("round_robin", "range", "hash"):
            check_decomposition(LogisticRegression(), data, scheme=scheme)

    def test_non_additive_statistics_caught(self, data):
        broken = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            # squaring the dots breaks additivity across shards
            compute_stat=lambda batch, params: row_dots(batch, params) ** 2 + 1.0,
            compute_gradient=lambda b, y, s, p: np.zeros_like(p),
            loss=lambda s, y: 0.0,
        )
        with pytest.raises(ModelCheckError, match="not additive"):
            check_decomposition(broken, data)

    def test_nonlocal_gradient_caught(self, data):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=1000)

        def bad_gradient(batch, labels, stats, params):
            # depends on the *local dimension*, so partitions disagree
            return np.full_like(params, float(params.size)) * 1e-3 + noise[: params.size] * 0

        broken = UserDefinedModel(
            init_model=lambda d: np.zeros(d),
            compute_stat=lambda batch, params: row_dots(batch, params),
            compute_gradient=bad_gradient,
            loss=lambda s, y: 0.0,
        )
        with pytest.raises(ModelCheckError, match="partition"):
            check_decomposition(broken, data)
