"""Property-based tests (hypothesis) on the sparse structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import CSRMatrix, SparseVector, accumulate_rows, row_dots


@st.composite
def dense_matrices(draw, max_rows=8, max_cols=10):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    values = draw(
        arrays(
            np.float64,
            (rows, cols),
            elements=st.floats(-100, 100, allow_nan=False).map(
                lambda x: 0.0 if abs(x) < 10 else x  # force sparsity
            ),
        )
    )
    return values


@st.composite
def sparse_vectors(draw, max_dim=30):
    dim = draw(st.integers(1, max_dim))
    indices = draw(
        st.lists(st.integers(0, dim - 1), unique=True, max_size=dim)
    )
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False).filter(lambda v: v != 0.0),
            min_size=len(indices),
            max_size=len(indices),
        )
    )
    return SparseVector(indices, values, dim)


class TestSparseVectorProperties:
    @given(sparse_vectors())
    def test_dense_roundtrip(self, v):
        assert SparseVector.from_dense(v.to_dense()) == v

    @given(sparse_vectors(), st.floats(-10, 10, allow_nan=False))
    def test_scale_linearity(self, v, alpha):
        assert np.allclose(v.scale(alpha).to_dense(), alpha * v.to_dense())

    @given(sparse_vectors())
    def test_dot_with_own_dense_is_norm(self, v):
        assert v.dot(v.to_dense()) == np.float64(v.norm_sq()) or np.isclose(
            v.dot(v.to_dense()), v.norm_sq(), rtol=1e-9
        )


class TestCSRProperties:
    @given(dense_matrices())
    def test_dense_roundtrip(self, dense):
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    @given(dense_matrices(), st.data())
    def test_take_rows_matches_numpy(self, dense, data):
        matrix = CSRMatrix.from_dense(dense)
        ids = data.draw(
            st.lists(st.integers(0, dense.shape[0] - 1), min_size=0, max_size=12)
        )
        assert np.array_equal(
            matrix.take_rows(ids).to_dense(), dense[np.asarray(ids, dtype=int)]
        )

    @given(dense_matrices(), st.data())
    def test_select_columns_matches_numpy(self, dense, data):
        matrix = CSRMatrix.from_dense(dense)
        cols = data.draw(
            st.lists(
                st.integers(0, dense.shape[1] - 1), unique=True, min_size=1
            ).map(sorted)
        )
        assert np.array_equal(
            matrix.select_columns(cols).to_dense(), dense[:, np.asarray(cols)]
        )

    @given(dense_matrices(), st.integers(1, 4))
    @settings(max_examples=40)
    def test_column_partition_roundtrip(self, dense, k):
        """Splitting into K round-robin shards and reassembling is lossless."""
        matrix = CSRMatrix.from_dense(dense)
        k = min(k, dense.shape[1])
        assignments = [
            np.arange(i, dense.shape[1], k, dtype=np.int64) for i in range(k)
        ]
        parts = [matrix.select_columns(a) for a in assignments]
        rebuilt = matrix.hstack_from_partitions(parts, assignments, dense.shape[1])
        assert np.array_equal(rebuilt.to_dense(), dense)

    @given(dense_matrices(), st.data())
    @settings(max_examples=40)
    def test_kernel_adjointness(self, dense, data):
        """<Xw, c> == <w, X^T c> for random w, c."""
        matrix = CSRMatrix.from_dense(dense)
        w = np.asarray(
            data.draw(
                st.lists(
                    st.floats(-10, 10, allow_nan=False),
                    min_size=dense.shape[1],
                    max_size=dense.shape[1],
                )
            )
        )
        c = np.asarray(
            data.draw(
                st.lists(
                    st.floats(-10, 10, allow_nan=False),
                    min_size=dense.shape[0],
                    max_size=dense.shape[0],
                )
            )
        )
        lhs = float(np.dot(row_dots(matrix, w), c))
        rhs = float(np.dot(w, accumulate_rows(matrix, c)))
        assert np.isclose(lhs, rhs, rtol=1e-8, atol=1e-6)
