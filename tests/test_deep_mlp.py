"""Tests for the deep column-partitioned MLP extension."""

import numpy as np
import pytest

from repro.extensions import DeepColumnMLP, DeepMLPColumnTrainer, SequentialDeepMLP
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster
from tests.test_extensions_mlp import xor_like_dataset


class TestDeepColumnMLPMath:
    def test_statistics_additive(self, tiny_gaussian):
        model = DeepColumnMLP([4, 3])
        w1 = model.init_w1(tiny_gaussian.n_features, seed=1)
        cols_a = np.arange(0, tiny_gaussian.n_features, 2)
        cols_b = np.arange(1, tiny_gaussian.n_features, 2)
        full = model.partial_statistics(tiny_gaussian.features, w1)
        part = model.partial_statistics(
            tiny_gaussian.features.select_columns(cols_a), w1[cols_a]
        ) + model.partial_statistics(
            tiny_gaussian.features.select_columns(cols_b), w1[cols_b]
        )
        assert np.allclose(full, part, atol=1e-10)

    def test_gradients_match_finite_differences(self):
        data = xor_like_dataset(40, seed=5)
        model = DeepColumnMLP([3, 2])
        w1 = model.init_w1(data.n_features, seed=6)
        tail = model.init_tail(seed=6)

        def loss_at(w1_, tail_):
            z = model.partial_statistics(data.features, w1_)
            return model.loss_from_statistics(z, data.labels, tail_)

        z = model.partial_statistics(data.features, w1)
        tail_grads, delta1 = model.backward(z, data.labels, tail)
        grad_w1 = model.w1_gradient(data.features, delta1, data.n_rows)

        eps = 1e-6
        for idx in [(0, 0), (3, 2), (7, 1)]:
            up = w1.copy(); up[idx] += eps
            down = w1.copy(); down[idx] -= eps
            numeric = (loss_at(up, tail) - loss_at(down, tail)) / (2 * eps)
            assert grad_w1[idx] == pytest.approx(numeric, abs=1e-6)
        for key, grad in tail_grads.items():
            flat = tail[key].reshape(-1)
            flat_grad = grad.reshape(-1)
            for i in range(min(flat.size, 4)):
                up = {k: v.copy() for k, v in tail.items()}
                down = {k: v.copy() for k, v in tail.items()}
                up[key].reshape(-1)[i] += eps
                down[key].reshape(-1)[i] -= eps
                numeric = (loss_at(w1, up) - loss_at(w1, down)) / (2 * eps)
                assert flat_grad[i] == pytest.approx(numeric, abs=1e-6), key

    def test_single_layer_matches_shallow_structure(self):
        """With one hidden layer, the tail is just (b1, w_out, b_out)."""
        model = DeepColumnMLP([5])
        tail = model.init_tail(seed=0)
        assert set(tail) == {"b1", "w_out", "b_out"}
        assert model.statistics_width == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            DeepColumnMLP([])
        with pytest.raises(ValueError):
            DeepColumnMLP([4, 0])


class TestDistributedDeepMLP:
    def test_matches_sequential_reference(self, tiny_gaussian):
        cluster = SimulatedCluster(CLUSTER1.with_workers(4))
        trainer = DeepMLPColumnTrainer(
            DeepColumnMLP([4, 3]), SGD(0.1), cluster, batch_size=32,
            iterations=10, eval_every=0, seed=8, block_size=64,
        )
        trainer.load(tiny_gaussian)
        trainer.fit()

        reference = SequentialDeepMLP(
            DeepColumnMLP([4, 3]), SGD(0.1), tiny_gaussian.n_features, seed=8
        )
        index = trainer._index
        for t in range(10):
            rows = index.to_global_rows(index.sample(t, 32))
            batch = tiny_gaussian.take(rows)
            reference.step(batch.features, batch.labels, t)

        assert np.allclose(trainer.current_w1(), reference.w1, atol=1e-9)
        for key in reference.tail:
            assert np.allclose(trainer.tail()[key], reference.tail[key], atol=1e-9)

    def test_deeper_net_solves_xor(self):
        data = xor_like_dataset(600, seed=9)
        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        trainer = DeepMLPColumnTrainer(
            DeepColumnMLP([8, 4]), SGD(0.5), cluster, batch_size=128,
            iterations=400, eval_every=100, seed=9, block_size=128,
        )
        trainer.load(data)
        result = trainer.fit()
        assert result.final_loss() < 0.3

    def test_statistics_width_is_first_layer_only(self, tiny_gaussian):
        """Adding tail layers must NOT increase communication."""
        traffic = {}
        for sizes in ([4], [4, 8, 8]):
            cluster = SimulatedCluster(CLUSTER1.with_workers(4))
            trainer = DeepMLPColumnTrainer(
                DeepColumnMLP(sizes), SGD(0.1), cluster, batch_size=32,
                iterations=3, eval_every=0, seed=1, block_size=64,
            )
            trainer.load(tiny_gaussian)
            result = trainer.fit()
            traffic[tuple(sizes)] = result.records[-1].bytes_sent
        assert traffic[(4,)] == traffic[(4, 8, 8)]

    def test_fit_without_load(self):
        from repro.errors import TrainingError

        cluster = SimulatedCluster(CLUSTER1.with_workers(2))
        trainer = DeepMLPColumnTrainer(DeepColumnMLP([2]), SGD(0.1), cluster)
        with pytest.raises(TrainingError):
            trainer.fit()
