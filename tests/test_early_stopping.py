"""Tests for the driver's early-stopping plateau detection."""

import pytest

from repro.core import ColumnSGDConfig, ColumnSGDDriver
from repro.models import LogisticRegression
from repro.optim import SGD
from repro.sim import CLUSTER1, SimulatedCluster


def run(data, patience, iterations=200, lr=1.0, min_improvement=1e-4):
    cluster = SimulatedCluster(CLUSTER1.with_workers(4))
    config = ColumnSGDConfig(
        batch_size=100, iterations=iterations, eval_every=5, seed=4,
        block_size=256, early_stop_patience=patience,
        early_stop_min_improvement=min_improvement,
    )
    driver = ColumnSGDDriver(LogisticRegression(), SGD(lr), cluster, config)
    driver.load(data)
    return driver.fit()


class TestEarlyStopping:
    def test_plateaued_run_stops_early(self, small_binary):
        """A tiny learning rate plateaus immediately; the run must stop
        long before the iteration budget."""
        result = run(small_binary, patience=3, iterations=200, lr=1e-9)
        assert result.n_iterations < 100
        assert "early stop" in result.notes

    def test_progressing_run_does_not_stop(self, small_binary):
        result = run(small_binary, patience=3, iterations=60, lr=1.0)
        assert result.n_iterations >= 60
        assert result.notes == ""

    def test_disabled_by_default(self, small_binary):
        result = run(small_binary, patience=0, iterations=30, lr=1e-9)
        assert result.n_iterations >= 30

    def test_patience_delays_stopping(self, small_binary):
        impatient = run(small_binary, patience=2, iterations=200, lr=1e-9)
        patient = run(small_binary, patience=8, iterations=200, lr=1e-9)
        assert impatient.n_iterations < patient.n_iterations

    def test_requires_eval_every(self):
        with pytest.raises(ValueError, match="eval_every"):
            ColumnSGDConfig(early_stop_patience=3, eval_every=0)

    def test_stopped_result_is_complete(self, small_binary):
        result = run(small_binary, patience=3, iterations=200, lr=1e-9)
        assert result.final_params is not None
        assert result.final_loss() is not None
