"""Train a Factorization Machine with ColumnSGD (the Table V workload).

FMs are the paper's showcase for large models: with F factors the model
is (F+1)x the size of LR, yet ColumnSGD's traffic only grows to
(F+1) * B statistics per iteration.  This example trains an FM on a
CTR-style dataset, shows the loss improving over the linear model, and
prints the traffic comparison.

Run:  python examples/factorization_machine.py
"""

from repro import (
    CLUSTER1,
    FactorizationMachine,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    make_classification,
    train_columnsgd,
)


def main():
    # Feature interactions matter here: dense-ish rows, modest dimension.
    data = make_classification(
        10_000, 2_000, nnz_per_row=25, binary_features=False, seed=2
    )
    print("dataset:", data)

    lr_result = train_columnsgd(
        data, LogisticRegression(), SGD(0.5),
        SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=150, eval_every=25, seed=2,
    )
    fm_result = train_columnsgd(
        data, FactorizationMachine(n_factors=10), SGD(0.05),
        SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=150, eval_every=25, seed=2,
    )

    print("\nLR   final loss: {:.4f}".format(lr_result.final_loss()))
    print("FM   final loss: {:.4f} (captures pairwise interactions)".format(
        fm_result.final_loss()))

    print("\nmodel sizes: LR {:,} params, FM {:,} params (11x)".format(
        data.n_features, data.n_features * 11))
    print("bytes/iteration: LR {:,}, FM {:,} (only ~11x, independent of m)".format(
        lr_result.records[-1].bytes_sent, fm_result.records[-1].bytes_sent))
    print("per-iteration: LR {:.4f}s, FM {:.4f}s".format(
        lr_result.avg_iteration_seconds(), fm_result.avg_iteration_seconds()))


if __name__ == "__main__":
    main()
