"""Coordinate descent vs ColumnSGD on the same column partitions.

The paper's related work singles out coordinate descent (Hydra, CoCoA)
as the optimizer family that is *naturally* column-oriented.  Both
trainers here consume the identical column-partitioned worksets; they
differ in what crosses the network per round:

* RidgeCD synchronises an O(N) residual — few rounds, heavy messages;
* ColumnSGD synchronises O(B) statistics — light messages, more rounds.

Run:  python examples/coordinate_descent.py
"""

from repro import CLUSTER1, LeastSquares, SGD, SimulatedCluster, train_columnsgd
from repro.datasets import make_regression
from repro.extensions import RidgeCDTrainer


def main():
    data = make_regression(5000, 8000, nnz_per_row=10, noise_std=0.05, seed=7)
    print("dataset:", data)

    print("\n--- distributed coordinate descent (ridge, lam=0) ---")
    cd = RidgeCDTrainer(
        SimulatedCluster(CLUSTER1), lam=0.0, iterations=40, eval_every=5, seed=7
    )
    cd.load(data)
    cd_result = cd.fit()
    for iteration, sim_time, loss in cd_result.losses():
        print("  round {:>3}  t={:6.3f}s  loss={:.4f}".format(iteration, sim_time, loss))

    print("\n--- ColumnSGD (least squares) ---")
    sgd_result = train_columnsgd(
        data, LeastSquares(), SGD(0.1), SimulatedCluster(CLUSTER1),
        batch_size=1000, iterations=200, eval_every=40, seed=7,
    )
    for iteration, sim_time, loss in sgd_result.losses():
        print("  iter {:>4}  t={:6.3f}s  loss={:.4f}".format(iteration, sim_time, loss))

    print("\nbytes per synchronisation:")
    print("  CD (residual, O(N)):      {:,}".format(cd_result.records[-1].bytes_sent))
    print("  ColumnSGD (stats, O(B)):  {:,}".format(sgd_result.records[-1].bytes_sent))
    print(
        "\nOn a quadratic objective CD's exact coordinate steps win; on "
        "non-quadratic losses, streaming data, or when N dwarfs B, the "
        "O(B) statistics exchange is the better trade — the design space "
        "the paper's Section VI sketches."
    )


if __name__ == "__main__":
    main()
