"""Column-partitioned neural network (the paper's Section III-C sketch).

The paper argues ColumnSGD can host fully-connected layers: partition
the FC weight matrix by input column, synchronise the per-example
pre-activations (one statistics round per layer), replicate the tiny
head.  This example trains such a one-hidden-layer network on an
XOR-style problem that a linear model provably cannot fit, and shows
the statistics traffic is B x hidden — still independent of the input
dimension.

Run:  python examples/mlp_fc_layer.py
"""

import numpy as np

from repro import CLUSTER1, LogisticRegression, SGD, SimulatedCluster, train_columnsgd
from repro.datasets import Dataset
from repro.extensions import ColumnMLP, MLPColumnTrainer
from repro.linalg import CSRMatrix
from repro.utils.rng import rng_from_seed


def xor_dataset(n_rows=4000, n_noise=30, seed=0):
    """y = sign(x0 * x1): linearly inseparable, trivially MLP-separable."""
    rng = rng_from_seed(seed)
    signal = rng.choice([-1.0, 1.0], size=(n_rows, 2))
    labels = np.where(signal[:, 0] * signal[:, 1] > 0, 1.0, -1.0)
    noise = rng.normal(0, 0.3, size=(n_rows, n_noise))
    return Dataset(
        CSRMatrix.from_dense(np.column_stack([signal, noise])), labels, name="xor"
    )


def main():
    data = xor_dataset()
    print("dataset:", data, "(XOR signal + noise features)")

    print("\nlinear model (ColumnSGD LR) — cannot do better than chance:")
    lr = train_columnsgd(
        data, LogisticRegression(), SGD(0.5), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=200, eval_every=50, seed=0,
    )
    print("  final loss {:.4f} (log 2 = 0.6931 is chance)".format(lr.final_loss()))

    print("\ncolumn-partitioned MLP (hidden=8, tanh):")
    trainer = MLPColumnTrainer(
        ColumnMLP(hidden=8), SGD(0.5), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=400, eval_every=50, seed=0,
    )
    trainer.load(data)
    result = trainer.fit()
    for iteration, sim_time, loss in result.losses():
        print("  iter {:>4}  t={:6.2f}s  loss={:.4f}".format(iteration, sim_time, loss))

    print("\nstatistics per iteration: batch x hidden = 500 x 8 values")
    print("bytes/iteration: {:,} (add 1000x more input features and this "
          "does not change)".format(result.records[-1].bytes_sent))


if __name__ == "__main__":
    main()
