"""Port of the paper's Fig 12: implement LR through the user interface.

The paper exposes four callbacks — initModel, computeStat, reduceStat,
updateModel.  This example writes them in Python (nearly line-for-line
from the Scala of Fig 12), wraps them in :class:`UserDefinedModel`, and
trains on ColumnSGD.  The result matches the built-in LR exactly.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import (
    CLUSTER1,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    UserDefinedModel,
    make_classification,
    train_columnsgd,
)
from repro.linalg import accumulate_rows, row_dots


# --- the four callbacks of Fig 12 ------------------------------------


def init_model(local_dim):
    """initModel: instantiate the local model partition as an array."""
    return np.zeros(local_dim)


def compute_stat(batch, local_model):
    """computeStat: partial dot products of the batch with the local
    model partition (one per data point)."""
    return row_dots(batch, local_model)


def reduce_stat(stat1, stat2):
    """reduceStat: the master sums partial statistics from workers."""
    return stat1 + stat2


def compute_gradient(batch, labels, stats, local_model):
    """The gradient step inside updateModel: recover the LR gradient of
    the local partition from the complete dot products (equation 6)."""
    dots = stats[:, 0]
    coefficients = -labels / (1.0 + np.exp(labels * dots))
    return accumulate_rows(batch, coefficients) / max(len(labels), 1)


def batch_loss(stats, labels):
    """Mean logistic loss from complete statistics (for reporting)."""
    margins = labels * stats[:, 0]
    return float(np.mean(np.log1p(np.exp(-margins))))


def main():
    data = make_classification(8_000, 3_000, nnz_per_row=12, seed=4)

    user_lr = UserDefinedModel(
        init_model=init_model,
        compute_stat=compute_stat,
        compute_gradient=compute_gradient,
        loss=batch_loss,
        reduce_stat=reduce_stat,
    )

    custom = train_columnsgd(
        data, user_lr, SGD(1.0), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=80, eval_every=20, seed=4,
    )
    builtin = train_columnsgd(
        data, LogisticRegression(), SGD(1.0), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=80, eval_every=20, seed=4,
    )

    print("custom  LR final loss: {:.6f}".format(custom.final_loss()))
    print("builtin LR final loss: {:.6f}".format(builtin.final_loss()))
    match = np.allclose(custom.final_params, builtin.final_params, atol=1e-9)
    print("parameter trajectories identical:", match)


if __name__ == "__main__":
    main()
