"""A realistic end-to-end pipeline: inspect, hash, split, train, score.

Mimics what a practitioner does with raw CTR data: look at the dataset's
skew, fold a huge feature space into a fixed model size with the
hashing trick, hold out a test split, train with ColumnSGD, checkpoint,
and report held-out metrics.

Run:  python examples/preprocessing_pipeline.py
"""

import tempfile

from repro import (
    CLUSTER1,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    evaluate_classifier,
    load_model,
    make_classification,
    save_model,
    train_columnsgd,
    train_test_split,
)
from repro.datasets.analysis import describe
from repro.preprocess import hash_features, normalize_rows


def main():
    # "Raw" data: 200k-dimensional one-hot CTR features, Zipf-skewed.
    raw = make_classification(
        15_000, 200_000, nnz_per_row=20, zipf_exponent=1.2, seed=8,
        name="raw-ctr",
    )
    print(describe(raw).render())

    # Hash into a fixed 16k-dimensional model; normalise rows.
    data = normalize_rows(hash_features(raw, n_buckets=16_384, seed=8))
    print("\nafter hashing: {} features, {} nnz".format(
        data.n_features, data.nnz))

    train, test = train_test_split(data, test_fraction=0.2, seed=8)
    print("split: {} train / {} test rows".format(train.n_rows, test.n_rows))

    result = train_columnsgd(
        train, LogisticRegression(), SGD(2.0), SimulatedCluster(CLUSTER1),
        batch_size=1000, iterations=150, eval_every=30, seed=8,
    )
    print("\n" + result.describe())

    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_model(handle.name, "lr", result.final_params,
                   metadata={"buckets": 16_384})
        name, params, meta = load_model(handle.name)
    print("checkpoint round-trip ok (model={}, meta={})".format(name, meta))

    report = evaluate_classifier(LogisticRegression(), params, test)
    print("\nheld-out metrics:")
    for metric, value in report.items():
        print("  {:>9}: {:.4f}".format(metric, value))


if __name__ == "__main__":
    main()
