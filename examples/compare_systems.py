"""Compare ColumnSGD against the four RowSGD baselines (a mini Fig 8).

Trains LR on a kdd12-like sparse dataset with all five systems on the
same simulated 8-machine cluster and prints per-iteration time, final
loss, and the time each system needs to reach a common target loss.

Run:  python examples/compare_systems.py
"""

from repro.datasets import load_profile
from repro.experiments import (
    ExperimentSpec,
    convergence_table,
    iteration_time_table,
    run_comparison,
)
from repro.sim import CLUSTER1


def main():
    data = load_profile("kdd12").generate(seed=1, rows=6000)
    print("dataset:", data)

    spec = ExperimentSpec(
        dataset="kdd12",
        model="lr",
        systems=["columnsgd", "mllib", "mllib*", "petuum", "mxnet"],
        batch_size=500,
        iterations=50,
        eval_every=5,
        cluster=CLUSTER1,
        learning_rate=1.0,
        seed=1,
        explicit_data=data,
    )
    results = run_comparison(spec)

    print("\nper-iteration time (simulated):")
    print(iteration_time_table(results))

    target = results["columnsgd"].final_loss() * 1.05
    print("\ntime to reach loss <= {:.4f}:".format(target))
    print(convergence_table(results, target))

    print(
        "\nNote: at this scaled-down model size the PS systems look fast "
        "(the paper's avazu regime).  The gaps the paper reports for kdd12 "
        "(930x over MLlib) appear at the true 54.7M-dimension scale — see "
        "benchmarks/bench_table4_lr_iteration.py for the paper-scale table."
    )


if __name__ == "__main__":
    main()
