"""Multinomial logistic regression: C statistics per example.

MLR is the paper's Appendix VIII-C model: parameters form an (m x C)
matrix, the statistics are the C per-class dot products, and ColumnSGD
ships C * B values per iteration — still independent of m.  This
example trains a 5-class classifier, tracks held-out loss during
training (fit(eval_dataset=...)), and reports test accuracy.

Run:  python examples/multiclass_mlr.py
"""

import numpy as np

from repro import (
    CLUSTER1,
    ColumnSGDConfig,
    ColumnSGDDriver,
    MultinomialLogisticRegression,
    SGD,
    SimulatedCluster,
    train_test_split,
)
from repro.datasets import make_multiclass


def main():
    n_classes = 5
    data = make_multiclass(12_000, 5_000, n_classes=n_classes, nnz_per_row=12,
                           seed=11)
    train, test = train_test_split(data, test_fraction=0.2, seed=11)
    print("dataset:", data, "classes:", n_classes)

    model = MultinomialLogisticRegression(n_classes=n_classes)
    driver = ColumnSGDDriver(
        model, SGD(1.0), SimulatedCluster(CLUSTER1),
        config=ColumnSGDConfig(batch_size=500, iterations=150, eval_every=25,
                               seed=11),
    )
    driver.load(train)
    result = driver.fit(eval_dataset=test)

    print("\ntrain/test loss during training:")
    test_by_iter = dict((it, loss) for it, _, loss in result.eval_losses())
    for iteration, _, train_loss in result.losses():
        print("  iter {:>4}  train={:.4f}  test={:.4f}".format(
            iteration, train_loss, test_by_iter[iteration]))

    predictions = model.predict(test.features, driver.current_params())
    accuracy = float(np.mean(predictions == test.labels))
    print("\ntest accuracy: {:.1%} (chance = {:.1%})".format(
        accuracy, 1 / n_classes))
    print("statistics per iteration: C x B = {} x {} values".format(
        n_classes, 500))
    print("bytes/iteration: {:,}".format(result.records[-1].bytes_sent))


if __name__ == "__main__":
    main()
