"""Stragglers and failures: backup computation + fault tolerance.

Reproduces the stories of Fig 9 and Fig 13 interactively:

1. inject a random straggler per iteration at StragglerLevel 1 and 5 and
   watch per-iteration time inflate;
2. enable 1-backup computation and watch the penalty disappear — the
   master recovers complete statistics from whichever group replica
   finishes first;
3. kill a worker mid-training and watch ColumnSGD reload the shard,
   re-initialise the lost model partition, and re-converge.

Run:  python examples/straggler_resilience.py
"""

from repro import (
    CLUSTER1,
    ColumnSGDConfig,
    ColumnSGDDriver,
    FailureInjector,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    StragglerModel,
    make_classification,
)


def run(data, backup=0, straggler_level=0.0, failures=None, iterations=40):
    cluster = SimulatedCluster(CLUSTER1)
    straggler = (
        StragglerModel(CLUSTER1.n_workers, level=straggler_level, seed=5)
        if straggler_level
        else None
    )
    driver = ColumnSGDDriver(
        LogisticRegression(),
        SGD(1.0),
        cluster,
        config=ColumnSGDConfig(
            batch_size=500, iterations=iterations, eval_every=10, seed=5, backup=backup
        ),
        straggler=straggler,
        failures=failures,
    )
    driver.load(data)
    return driver.fit()


def main():
    data = make_classification(10_000, 20_000, nnz_per_row=15, seed=5)
    print("dataset:", data)

    print("\n--- stragglers (Fig 9) ---")
    pure = run(data)
    print("pure ColumnSGD:        {:.3f}s/iter".format(pure.avg_iteration_seconds()))
    for level in (1.0, 5.0):
        slowed = run(data, straggler_level=level)
        print(
            "StragglerLevel {:.0f}:      {:.3f}s/iter ({:.1f}x slower)".format(
                level,
                slowed.avg_iteration_seconds(),
                slowed.avg_iteration_seconds() / pure.avg_iteration_seconds(),
            )
        )
    backed = run(data, backup=1, straggler_level=5.0)
    print(
        "1-backup + SL5:        {:.3f}s/iter (straggler absorbed)".format(
            backed.avg_iteration_seconds()
        )
    )

    print("\n--- worker failure (Fig 13) ---")
    failed = run(
        data,
        failures=FailureInjector.worker_failure(20, worker_id=3),
        iterations=60,
    )
    print("loss trace around the failure at iteration 20:")
    for iteration, sim_time, loss in failed.losses():
        marker = "  <- failure recovery" if iteration == 29 else ""
        print("  iter {:>3}  t={:6.2f}s  loss={:.4f}{}".format(
            iteration, sim_time, loss, marker))
    print("final loss {:.4f} — SGD re-converged without checkpoints".format(
        failed.final_loss()))


if __name__ == "__main__":
    main()
