"""Quickstart: train logistic regression with ColumnSGD in ~20 lines.

Generates a sparse synthetic CTR-style dataset, spins up a simulated
8-machine cluster (the paper's Cluster 1), trains LR with column-
partitioned SGD, and prints the loss curve and traffic summary.

Run:  python examples/quickstart.py
      python examples/quickstart.py --backend local   # real processes,
                                                      # wall-clock time
"""

import argparse

from repro import (
    CLUSTER1,
    LogisticRegression,
    SGD,
    SimulatedCluster,
    make_classification,
    train_columnsgd,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", default="sim", choices=("sim", "local"),
        help="'sim' charges modeled time on the discrete-event simulator; "
             "'local' runs each worker as a real OS process and measures "
             "wall-clock rounds (see docs/runtime.md)",
    )
    parser.add_argument(
        "--local-processes", type=int, default=0,
        help="OS processes hosting the workers with --backend local "
             "(0 = one per worker)",
    )
    args = parser.parse_args(argv)

    # 20k examples, 10k features, ~15 non-zeros per row (avazu-like).
    data = make_classification(20_000, 10_000, nnz_per_row=15, seed=0)
    print("dataset:", data)

    cluster = SimulatedCluster(CLUSTER1)
    result = train_columnsgd(
        data,
        LogisticRegression(),
        SGD(learning_rate=1.0),  # Table III uses 10.0 on the real avazu;
        # the synthetic stand-in prefers a gentler rate
        cluster,
        batch_size=1000,
        iterations=100,
        eval_every=10,
        backend=args.backend,
        local_processes=args.local_processes,
    )

    timing = "wall-clock" if args.backend == "local" else "simulated"
    print(result.describe())
    print("\nloss vs {} time:".format(timing))
    for iteration, sim_time, loss in result.losses():
        print("  iter {:>4}  t={:7.3f}s  loss={:.4f}".format(iteration, sim_time, loss))

    print("\nper-iteration time: {:.4f}s ({})".format(
        result.avg_iteration_seconds(), timing))
    print("network bytes over the run: {:,}".format(result.total_bytes()))
    print(
        "note: communication is O(batch) — rerun with 10x more features "
        "and the traffic will not change."
    )


if __name__ == "__main__":
    main()
