"""Field-aware FM: the natural next step after the paper's FM.

FFM (Juan et al., RecSys 2016) gives each feature one latent vector per
*field* (user features vs ad features vs context features...).  It
decomposes under ColumnSGD's statistics protocol exactly like FM does —
field-pair partial sums are additive over column shards — so the same
driver trains it unchanged, with statistics width 1 + A^2 F.

This example builds a two-field dataset whose labels depend on a
cross-field interaction, shows LR stall while FFM fits it, and prints
the traffic arithmetic.

Run:  python examples/field_aware_fm.py
"""

import numpy as np

from repro import CLUSTER1, LogisticRegression, SGD, SimulatedCluster, train_columnsgd
from repro.datasets import Dataset
from repro.linalg import CSRMatrix
from repro.models.ffm import FieldAwareFM
from repro.utils.rng import rng_from_seed


def cross_field_dataset(n_rows=6000, per_field=10, seed=3):
    """Two fields; the label is the sign of a product of one feature
    from each field — invisible to any linear model."""
    rng = rng_from_seed(seed)
    m = 2 * per_field
    dense = rng.normal(size=(n_rows, m))
    labels = np.where(dense[:, 0] * dense[:, per_field] > 0, 1.0, -1.0)
    field_of = np.array([0] * per_field + [1] * per_field)
    return Dataset(CSRMatrix.from_dense(dense), labels, name="cross-field"), field_of


def main():
    data, field_of = cross_field_dataset()
    print("dataset:", data, "fields:", sorted(set(field_of.tolist())))

    lr = train_columnsgd(
        data, LogisticRegression(), SGD(0.5), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=200, eval_every=50, seed=3,
    )
    print("\nLR  final loss: {:.4f} (chance = log 2 = 0.6931)".format(lr.final_loss()))

    ffm_model = FieldAwareFM(field_of, n_factors=2)
    ffm = train_columnsgd(
        data, ffm_model, SGD(0.1), SimulatedCluster(CLUSTER1),
        batch_size=500, iterations=200, eval_every=50, seed=3,
    )
    print("FFM final loss: {:.4f} (captures the cross-field product)".format(
        ffm.final_loss()))

    print("\nstatistics width: LR 1, FFM 1 + A^2 F = {} values per example".format(
        ffm_model.statistics_width))
    print("bytes/iteration: LR {:,}, FFM {:,} — still independent of the "
          "model dimension".format(
              lr.records[-1].bytes_sent, ffm.records[-1].bytes_sent))


if __name__ == "__main__":
    main()
